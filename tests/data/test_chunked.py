"""Out-of-core primitives: streaming writers, external merge, chunked CSR.

Every external-memory algorithm here has an in-RAM numpy reference it
must equal exactly — bit-identity is the contract that lets the scale
builder swap execution strategies without touching content addresses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.chunked import (DEFAULT_CHUNK_ROWS, NpyStreamWriter,
                                coo_to_csr_chunked, decode_pairs,
                                encode_pairs, external_k_core,
                                external_sorted_unique, read_npy_chunks,
                                sorted_coo_to_csr)
from repro.data.world import apply_k_core

#: the parity grid every chunked algorithm is exercised over: degenerate
#: one-row chunks, a prime (never aligned with any internal block), the
#: library default, and a single chunk covering everything
CHUNK_SIZES = (1, 13, DEFAULT_CHUNK_ROWS, 10**9)


def random_pairs(rng, rows=500, num_users=40, num_items=30):
    return np.column_stack([
        rng.integers(0, num_users, size=rows),
        rng.integers(0, num_items, size=rows),
    ]).astype(np.int64)


class TestNpyStreamWriter:
    def test_round_trip(self, rng, tmp_path):
        data = rng.normal(size=(257, 6)).astype(np.float32)
        streamed = tmp_path / "streamed.npy"
        with NpyStreamWriter(streamed, np.float32, row_shape=(6,)) as w:
            for start in range(0, len(data), 50):
                w.write(data[start:start + 50])
        np.testing.assert_array_equal(np.load(streamed), data)

    def test_byte_determinism_across_write_granularity(self, rng,
                                                       tmp_path):
        """The on-disk bytes depend on the content, never on how the
        writes were sliced — the property v2 content hashing rests on."""
        data = rng.normal(size=(257, 6)).astype(np.float32)
        paths = []
        for label, step in (("a", 50), ("b", 1), ("c", 10**9)):
            path = tmp_path / f"{label}.npy"
            with NpyStreamWriter(path, np.float32, row_shape=(6,)) as w:
                for start in range(0, len(data), step):
                    w.write(data[start:start + step])
            paths.append(path)
        blobs = {path.read_bytes() for path in paths}
        assert len(blobs) == 1

    def test_empty_write_is_a_valid_zero_row_array(self, tmp_path):
        path = tmp_path / "empty.npy"
        with NpyStreamWriter(path, np.int64) as w:
            pass
        assert np.load(path).shape == (0,)

    def test_mmap_loadable(self, rng, tmp_path):
        data = rng.integers(0, 100, size=(64, 2)).astype(np.int64)
        path = tmp_path / "pairs.npy"
        with NpyStreamWriter(path, np.int64, row_shape=(2,)) as w:
            w.write(data)
        loaded = np.load(path, mmap_mode="r")
        assert isinstance(loaded, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded), data)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_read_npy_chunks_reassembles(self, rng, tmp_path, chunk_rows):
        data = rng.normal(size=(123, 3))
        path = tmp_path / "data.npy"
        np.save(path, data)
        chunks = list(read_npy_chunks(path, chunk_rows=chunk_rows))
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_read_truncated_file_raises(self, rng, tmp_path):
        path = tmp_path / "torn.npy"
        np.save(path, rng.normal(size=(100, 4)))
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 64])
        with pytest.raises(ValueError, match="truncated"):
            list(read_npy_chunks(path, chunk_rows=16))


class TestPairEncoding:
    def test_round_trip(self, rng):
        pairs = random_pairs(rng)
        keys = encode_pairs(pairs, num_items=30)
        np.testing.assert_array_equal(decode_pairs(keys, 30), pairs)

    def test_encoding_is_order_preserving_on_sorted_pairs(self, rng):
        pairs = random_pairs(rng)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        keys = encode_pairs(pairs[order], num_items=30)
        assert (np.diff(keys) >= 0).all()


class TestExternalSortedUnique:
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_equals_np_unique(self, rng, tmp_path, chunk_rows):
        keys = rng.integers(0, 400, size=900).astype(np.int64)
        chunks = [keys[s:s + 97] for s in range(0, len(keys), 97)]
        out = external_sorted_unique(iter(chunks), tmp_path,
                                     chunk_rows=chunk_rows)
        np.testing.assert_array_equal(np.load(out), np.unique(keys))

    def test_duplicate_heavy_input(self, tmp_path):
        """Adversarial dedup: every value repeated across many chunks,
        including runs made entirely of one value."""
        chunks = [np.full(50, 7, dtype=np.int64),
                  np.arange(10, dtype=np.int64).repeat(20),
                  np.full(30, 7, dtype=np.int64),
                  np.array([9, 9, 9, 3, 3, 0], dtype=np.int64)]
        out = external_sorted_unique(iter(chunks), tmp_path, chunk_rows=8)
        np.testing.assert_array_equal(
            np.load(out), np.unique(np.concatenate(chunks)))

    def test_empty_input(self, tmp_path):
        out = external_sorted_unique(iter([]), tmp_path)
        assert len(np.load(out)) == 0


class TestExternalKCore:
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    @pytest.mark.parametrize("k", (1, 3, 8))
    def test_equals_apply_k_core(self, rng, tmp_path, chunk_rows, k):
        pairs = np.unique(random_pairs(rng, rows=600), axis=0)
        pairs_path = tmp_path / "pairs.npy"
        np.save(pairs_path, pairs)
        out, kept = external_k_core(pairs_path, k, tmp_path,
                                    chunk_rows=chunk_rows)
        expected = apply_k_core(pairs, k=k)
        assert kept == len(expected)
        np.testing.assert_array_equal(np.load(out), expected)

    def test_k_core_that_empties_the_world(self, rng, tmp_path):
        pairs = np.unique(random_pairs(rng, rows=40, num_users=40), axis=0)
        pairs_path = tmp_path / "pairs.npy"
        np.save(pairs_path, pairs)
        out, kept = external_k_core(pairs_path, 10**6, tmp_path,
                                    chunk_rows=16)
        assert kept == 0
        assert len(np.load(out)) == 0


class TestChunkedCsr:
    def reference_csr(self, rows, cols, num_rows):
        import scipy.sparse as sp
        data = np.ones(len(rows))
        return sp.csr_matrix((data, (rows, cols)), shape=(num_rows,
                                                          cols.max() + 1))

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_sorted_coo_to_csr(self, rng, tmp_path, chunk_rows):
        pairs = np.unique(random_pairs(rng, rows=700), axis=0)
        chunks = [pairs[s:s + chunk_rows]
                  for s in range(0, len(pairs), chunk_rows)]
        indices_out = tmp_path / "indices.npy"
        indptr = sorted_coo_to_csr(iter(chunks), num_rows=40,
                                   indices_out=indices_out)
        ref = self.reference_csr(pairs[:, 0], pairs[:, 1], 40)
        np.testing.assert_array_equal(indptr, ref.indptr)
        np.testing.assert_array_equal(np.load(indices_out), ref.indices)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_unsorted_two_pass_scatter(self, rng, tmp_path, chunk_rows):
        pairs = random_pairs(rng, rows=700)
        rng.shuffle(pairs)  # rows arrive in arbitrary order

        def factory():
            return (pairs[s:s + chunk_rows]
                    for s in range(0, len(pairs), chunk_rows))

        indices_out = tmp_path / "indices.npy"
        indptr = coo_to_csr_chunked(factory, num_rows=40,
                                    indices_out=indices_out)
        # reference: stable sort by row, preserving within-row arrival
        order = np.argsort(pairs[:, 0], kind="stable")
        expected_indices = pairs[order, 1]
        expected_indptr = np.zeros(41, dtype=np.int64)
        np.cumsum(np.bincount(pairs[:, 0], minlength=40),
                  out=expected_indptr[1:])
        np.testing.assert_array_equal(indptr, expected_indptr)
        np.testing.assert_array_equal(np.load(indices_out),
                                      expected_indices)
