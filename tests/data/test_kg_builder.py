"""Tests for knowledge-graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.kg_builder import (RELATION_INDEX, RELATIONS,
                                   build_knowledge_graph)
from repro.data.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(
        num_users=80, num_items=50, vocab_size=100, cluster_vocab_size=10,
        num_brands=8, num_categories=5, seed=9))


@pytest.fixture(scope="module")
def kg(world):
    return build_knowledge_graph(world)


class TestSchema:
    def test_six_relations(self, kg):
        assert kg.num_relations == 6
        assert len(RELATIONS) == 6

    def test_items_are_lowest_entity_ids(self, kg, world):
        assert kg.num_items == 50
        # produced_by triplets must have item heads
        produced = kg.triplets[kg.triplets[:, 1]
                               == RELATION_INDEX["produced_by"]]
        assert produced[:, 0].max() < 50

    def test_every_item_has_brand_and_category(self, kg, world):
        for relation in ("produced_by", "belong_to"):
            rows = kg.triplets[kg.triplets[:, 1] == RELATION_INDEX[relation]]
            assert set(rows[:, 0].tolist()) == set(range(50))

    def test_brand_tails_in_brand_range(self, kg, world):
        produced = kg.triplets[kg.triplets[:, 1]
                               == RELATION_INDEX["produced_by"]]
        tails = produced[:, 2]
        num_features = kg.num_entities - 50 - 8 - 5
        brand_base = 50 + num_features
        assert tails.min() >= brand_base
        assert tails.max() < brand_base + 8

    def test_entity_ids_in_range(self, kg):
        assert kg.triplets[:, [0, 2]].max() < kg.num_entities
        assert kg.triplets.min() >= 0

    def test_no_duplicate_triplets(self, kg):
        assert len(kg.triplet_set()) == kg.num_triplets

    def test_labels_cover_all_entities(self, kg):
        assert len(kg.entity_labels) == kg.num_entities


class TestCooccurrenceRelations:
    def test_item_item_relations_present(self, kg):
        for relation in ("also_bought", "also_viewed", "bought_together"):
            rows = kg.triplets[kg.triplets[:, 1] == RELATION_INDEX[relation]]
            assert len(rows) > 0
            assert rows[:, 2].max() < kg.num_items  # tails are items

    def test_brand_matches_world(self, kg, world):
        produced = kg.triplets[kg.triplets[:, 1]
                               == RELATION_INDEX["produced_by"]]
        num_features = kg.num_entities - 50 - 8 - 5
        brand_base = 50 + num_features
        for head, _, tail in produced[:10]:
            assert world.item_brand[head] == tail - brand_base


class TestMutation:
    def test_with_triplets_preserves_metadata(self, kg):
        sub = kg.with_triplets(kg.triplets[:10])
        assert sub.num_triplets == 10
        assert sub.num_entities == kg.num_entities
        assert sub.num_relations == kg.num_relations

    def test_neighbors_of(self, kg):
        head = int(kg.triplets[0, 0])
        neighbors = kg.neighbors_of(head)
        assert np.all(neighbors[:, 0] == head)
