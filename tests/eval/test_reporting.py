"""Tests for aggregate experiment reporting."""

from __future__ import annotations

from repro.eval.reporting import (EXPERIMENT_INDEX, build_report,
                                  scan_results, write_report,
                                  write_text_result)


def _populate(tmp_path, experiment_ids):
    for exp_id in experiment_ids:
        filename, _ = EXPERIMENT_INDEX[exp_id]
        (tmp_path / filename).write_text(f"content of {exp_id}\n")


class TestScan:
    def test_empty_dir(self, tmp_path):
        status = scan_results(tmp_path)
        assert not status.present
        assert len(status.missing) == len(EXPERIMENT_INDEX)
        assert status.coverage == 0.0

    def test_partial(self, tmp_path):
        _populate(tmp_path, ["table1", "fig8"])
        status = scan_results(tmp_path)
        assert set(status.present) == {"table1", "fig8"}
        assert not status.complete

    def test_complete(self, tmp_path):
        _populate(tmp_path, list(EXPERIMENT_INDEX))
        status = scan_results(tmp_path)
        assert status.complete
        assert status.coverage == 1.0


class TestReport:
    def test_includes_present_tables(self, tmp_path):
        _populate(tmp_path, ["table1", "table4"])
        report = build_report(tmp_path)
        assert "content of table1" in report
        assert "Table IV" in report
        assert "Table II" not in report.split("Missing:")[1].split("\n")[0] \
            or "Table II" in report  # listed missing

    def test_mentions_missing(self, tmp_path):
        _populate(tmp_path, ["table1"])
        report = build_report(tmp_path)
        assert "Missing:" in report
        assert "Fig. 8" in report

    def test_write_report(self, tmp_path):
        _populate(tmp_path, ["table1"])
        out = tmp_path / "report" / "RESULTS.md"
        status = write_report(tmp_path, out)
        assert out.exists()
        assert "content of table1" in out.read_text()
        assert "table1" in status.present

    def test_write_text_result_guarantees_one_trailing_newline(
            self, tmp_path):
        """The single result-writing entry point (shared by the
        benchmark harnesses, the aggregate report, and the experiment
        runner's report layer) normalizes the file tail."""
        for text in ("table", "table\n", "table\n\n\n"):
            path = write_text_result(tmp_path / "deep" / "t.txt", text)
            assert path.read_text() == "table\n"
        # interior newlines (multi-table results files) are preserved
        path = write_text_result(tmp_path / "multi.txt", "a\n\nb\n")
        assert path.read_text() == "a\n\nb\n"

    def test_index_covers_every_paper_artifact(self):
        references = " ".join(ref for _, ref in EXPERIMENT_INDEX.values())
        for artifact in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Table VI", "Table VII", "Table VIII",
                         "Fig. 1", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert artifact in references, artifact
