"""Tests for the bootstrap significance machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.significance import (compare_models, paired_bootstrap,
                                     per_user_metric)


class FixedModel:
    def __init__(self, scores):
        self.scores = scores

    def score_users(self, user_ids):
        return self.scores[np.asarray(user_ids)]


class TestPairedBootstrap:
    def test_clear_winner_significant(self):
        rng = np.random.default_rng(0)
        users = range(200)
        a = {u: 0.5 + 0.1 * rng.random() for u in users}
        b = {u: 0.2 + 0.1 * rng.random() for u in users}
        result = paired_bootstrap(a, b, num_samples=500)
        assert result.significant
        assert result.p_value < 0.01
        assert result.ci_low > 0

    def test_identical_not_significant(self):
        values = {u: 0.4 for u in range(100)}
        result = paired_bootstrap(values, dict(values), num_samples=200)
        assert not result.significant
        assert result.mean_difference == pytest.approx(0.0)

    def test_noisy_tie_not_significant(self):
        rng = np.random.default_rng(1)
        a = {u: rng.random() for u in range(50)}
        b = {u: rng.random() for u in range(50)}
        result = paired_bootstrap(a, b, num_samples=500)
        assert result.p_value > 0.01 or abs(result.mean_difference) < 0.1

    def test_requires_overlap(self):
        with pytest.raises(ValueError):
            paired_bootstrap({0: 1.0}, {1: 1.0})

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        a = {u: rng.random() for u in range(30)}
        b = {u: rng.random() for u in range(30)}
        r1 = paired_bootstrap(a, b, num_samples=100, seed=5)
        r2 = paired_bootstrap(a, b, num_samples=100, seed=5)
        assert r1.p_value == r2.p_value


class TestPerUserMetric:
    def test_oracle_gets_ones(self, tiny_dataset):
        split = tiny_dataset.split
        scores = np.zeros((split.num_users, split.num_items))
        for user, items in split.ground_truth("cold_test").items():
            for item in items:
                scores[user, item] = 5.0
        values = per_user_metric(FixedModel(scores), split, "cold_test",
                                 metric="hit", k=20)
        assert values and all(v == 1.0 for v in values.values())

    def test_metric_selection(self, tiny_dataset):
        split = tiny_dataset.split
        scores = np.random.default_rng(0).random(
            (split.num_users, split.num_items))
        for metric in ("recall", "precision", "hit", "mrr", "ndcg"):
            values = per_user_metric(FixedModel(scores), split,
                                     "cold_test", metric=metric, k=10)
            assert all(0.0 <= v <= 1.0 for v in values.values())


class TestCompareModels:
    def test_oracle_beats_random(self, tiny_dataset):
        split = tiny_dataset.split
        oracle_scores = np.zeros((split.num_users, split.num_items))
        for user, items in split.ground_truth("cold_test").items():
            for item in items:
                oracle_scores[user, item] = 5.0
        random_scores = np.random.default_rng(0).random(
            (split.num_users, split.num_items))
        result = compare_models(
            FixedModel(oracle_scores), FixedModel(random_scores),
            split, "cold_test", metric="mrr", k=10, num_samples=300)
        assert result.mean_a > result.mean_b
        assert result.significant
