"""Tests for ranking metrics, including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (MetricResult, evaluate_rankings,
                                harmonic_mean, harmonic_mean_result,
                                hit_at_k, mrr_at_k, ndcg_at_k,
                                precision_at_k, recall_at_k)

RANKED = np.array([5, 3, 8, 1, 9])


class TestPointMetrics:
    def test_recall(self):
        assert recall_at_k(RANKED, {3, 9, 100}, 5) == pytest.approx(2 / 3)

    def test_recall_empty_relevant(self):
        assert recall_at_k(RANKED, set(), 5) == 0.0

    def test_precision(self):
        assert precision_at_k(RANKED, {3, 9}, 5) == pytest.approx(0.4)

    def test_hit(self):
        assert hit_at_k(RANKED, {9}, 5) == 1.0
        assert hit_at_k(RANKED, {9}, 2) == 0.0

    def test_mrr_first_position(self):
        assert mrr_at_k(RANKED, {5}, 5) == 1.0

    def test_mrr_later_position(self):
        assert mrr_at_k(RANKED, {8}, 5) == pytest.approx(1 / 3)

    def test_mrr_no_hit(self):
        assert mrr_at_k(RANKED, {42}, 5) == 0.0

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k(np.array([1, 2]), {1, 2}, 2) == pytest.approx(1.0)

    def test_ndcg_worst_position(self):
        partial = ndcg_at_k(np.array([0, 0, 0, 0, 7]), {7}, 5)
        assert 0 < partial < 1

    def test_ndcg_truncates_ideal(self):
        # 3 relevant, k=2: perfect top-2 should be NDCG 1
        assert ndcg_at_k(np.array([1, 2]), {1, 2, 3}, 2) == pytest.approx(1.0)


class TestAveraging:
    def test_average_over_users(self):
        rankings = {0: np.array([1, 2]), 1: np.array([3, 4])}
        truth = {0: {1}, 1: {9}}
        result = evaluate_rankings(rankings, truth, k=2)
        assert result.recall == pytest.approx(0.5)
        assert result.num_users == 2

    def test_user_missing_ranking_counts_zero(self):
        result = evaluate_rankings({}, {0: {1}}, k=2)
        assert result.recall == 0.0
        assert result.num_users == 1

    def test_no_users(self):
        result = evaluate_rankings({}, {}, k=2)
        assert result.num_users == 0

    def test_percent_row(self):
        result = MetricResult(20, 0.123, 0.2, 0.3, 0.4, 0.5, 10)
        row = result.as_percent_row()
        assert row["R@20"] == 12.3
        assert row["M@20"] == 20.0


class TestHarmonicMean:
    def test_zero_side_gives_zero(self):
        assert harmonic_mean(0.0, 0.8) == 0.0

    def test_equal_sides(self):
        assert harmonic_mean(0.4, 0.4) == pytest.approx(0.4)

    def test_penalizes_short_barrel(self):
        assert harmonic_mean(0.01, 0.99) < 0.02

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.001, 1.0), st.floats(0.001, 1.0))
    def test_bounded_by_min_and_max(self, a, b):
        hm = harmonic_mean(a, b)
        assert min(a, b) - 1e-12 <= hm <= max(a, b) + 1e-12

    def test_metricwise(self):
        cold = MetricResult(20, 0.2, 0.2, 0.2, 0.2, 0.2, 5)
        warm = MetricResult(20, 0.4, 0.4, 0.4, 0.4, 0.4, 7)
        hm = harmonic_mean_result(cold, warm)
        assert hm.recall == pytest.approx(2 * 0.2 * 0.4 / 0.6)

    def test_mismatched_k_raises(self):
        cold = MetricResult(10, 0.2, 0.2, 0.2, 0.2, 0.2, 5)
        warm = MetricResult(20, 0.4, 0.4, 0.4, 0.4, 0.4, 7)
        with pytest.raises(ValueError):
            harmonic_mean_result(cold, warm)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True),
       st.sets(st.integers(0, 30), min_size=1, max_size=5))
def test_metric_invariants(ranked, relevant):
    """All metrics live in [0,1]; recall <= hit; mrr <= hit."""
    ranked = np.asarray(ranked)
    k = len(ranked)
    values = {
        "recall": recall_at_k(ranked, relevant, k),
        "precision": precision_at_k(ranked, relevant, k),
        "hit": hit_at_k(ranked, relevant, k),
        "mrr": mrr_at_k(ranked, relevant, k),
        "ndcg": ndcg_at_k(ranked, relevant, k),
    }
    for name, value in values.items():
        assert 0.0 <= value <= 1.0, name
    assert values["recall"] <= values["hit"] + 1e-12
    assert values["mrr"] <= values["hit"] + 1e-12
    assert values["ndcg"] <= values["hit"] + 1e-12
