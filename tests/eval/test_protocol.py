"""Tests for the all-ranking evaluation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.protocol import (evaluate_model, evaluate_normal_cold,
                                 evaluate_scenario, rank_candidates)


class OracleModel:
    """Scores items by ground-truth membership — must achieve perfect
    metrics under the protocol."""

    def __init__(self, split, which):
        self.split = split
        truth = split.ground_truth(which)
        self.scores = np.zeros((split.num_users, split.num_items))
        for user, items in truth.items():
            for item in items:
                self.scores[user, item] = 10.0

    def score_users(self, user_ids):
        return self.scores[np.asarray(user_ids)]


class ConstantModel:
    """Same score everywhere — a chance-level ranker."""

    def __init__(self, num_users, num_items):
        self.shape = (num_users, num_items)

    def score_users(self, user_ids):
        return np.zeros((len(user_ids), self.shape[1]))


class TestRankCandidates:
    def test_orders_by_score(self):
        scores = np.array([0.1, 5.0, 3.0, 4.0])
        out = rank_candidates(scores, np.array([0, 1, 2, 3]), k=3)
        np.testing.assert_array_equal(out, [1, 3, 2])

    def test_restricts_to_candidates(self):
        scores = np.array([9.0, 5.0, 3.0, 4.0])
        out = rank_candidates(scores, np.array([2, 3]), k=2)
        np.testing.assert_array_equal(out, [3, 2])

    def test_k_larger_than_candidates(self):
        out = rank_candidates(np.array([1.0, 2.0]), np.array([0, 1]), k=10)
        assert len(out) == 2


class TestScenario:
    def test_oracle_perfect_cold(self, tiny_dataset):
        model = OracleModel(tiny_dataset.split, "cold_test")
        result = evaluate_scenario(model, tiny_dataset.split, "cold_test",
                                   k=20)
        assert result.hit == pytest.approx(1.0)
        assert result.mrr == pytest.approx(1.0)

    def test_oracle_perfect_warm(self, tiny_dataset):
        model = OracleModel(tiny_dataset.split, "warm_test")
        result = evaluate_scenario(model, tiny_dataset.split, "warm_test",
                                   k=20)
        assert result.hit == pytest.approx(1.0)

    def test_train_items_masked(self, tiny_dataset):
        """A model that scores *training* items highest must not benefit:
        those items are excluded from the warm candidate ranking."""
        split = tiny_dataset.split
        model = OracleModel(split, "warm_test")
        # Boost training items above ground truth scores.
        for user, item in split.train:
            model.scores[user, item] = 100.0
        result = evaluate_scenario(model, split, "warm_test", k=20)
        assert result.hit == pytest.approx(1.0)

    def test_cold_candidates_are_cold_only(self, tiny_dataset):
        """Scoring warm items high must not affect cold evaluation."""
        split = tiny_dataset.split
        model = OracleModel(split, "cold_test")
        model.scores[:, split.warm_items] = 1000.0
        result = evaluate_scenario(model, split, "cold_test", k=20)
        assert result.hit == pytest.approx(1.0)

    def test_evaluate_model_bundle(self, tiny_dataset):
        model = ConstantModel(tiny_dataset.num_users, tiny_dataset.num_items)
        bundle = evaluate_model(model, tiny_dataset.split, k=10)
        assert bundle.hm.recall <= max(bundle.cold.recall,
                                       bundle.warm.recall)

    def test_validation_split_used(self, tiny_dataset):
        model = OracleModel(tiny_dataset.split, "warm_val")
        result = evaluate_model(model, tiny_dataset.split, k=20,
                                use_validation=True)
        assert result.warm.hit == pytest.approx(1.0)


class TestNormalCold:
    def test_known_items_masked(self, tiny_dataset):
        split = tiny_dataset.split
        model = OracleModel(split, "cold_test_unknown")
        # Put huge scores on known items; they must be masked out.
        for user, item in split.cold_test_known:
            model.scores[user, item] = 1000.0
        result = evaluate_normal_cold(model, split, k=20)
        assert result.hit == pytest.approx(1.0)

    def test_beats_strict_cold_when_informative(self, small_dataset):
        """Sanity: evaluating on the unknown half with known masking keeps
        the metric well-defined and in range."""
        model = ConstantModel(small_dataset.num_users,
                              small_dataset.num_items)
        result = evaluate_normal_cold(model, small_dataset.split, k=10)
        assert 0.0 <= result.recall <= 1.0
