"""Tests for multi-cutoff evaluation."""

from __future__ import annotations

import numpy as np

from repro.eval import evaluate_at_ks, evaluate_scenario


class FixedModel:
    def __init__(self, scores):
        self.scores = scores

    def score_users(self, user_ids):
        return self.scores[np.asarray(user_ids)]


def _random_model(split, seed=0):
    rng = np.random.default_rng(seed)
    return FixedModel(rng.random((split.num_users, split.num_items)))


class TestEvaluateAtKs:
    def test_matches_single_k(self, tiny_dataset):
        split = tiny_dataset.split
        model = _random_model(split)
        multi = evaluate_at_ks(model, split, "cold_test", ks=(5, 10))
        single = evaluate_scenario(model, split, "cold_test", k=10)
        assert multi[10].recall == single.recall
        assert multi[10].mrr == single.mrr

    def test_recall_monotone_in_k(self, tiny_dataset):
        split = tiny_dataset.split
        model = _random_model(split)
        multi = evaluate_at_ks(model, split, "cold_test", ks=(2, 5, 10))
        assert multi[2].recall <= multi[5].recall <= multi[10].recall

    def test_hit_monotone_in_k(self, tiny_dataset):
        split = tiny_dataset.split
        model = _random_model(split)
        multi = evaluate_at_ks(model, split, "warm_test", ks=(2, 20))
        assert multi[2].hit <= multi[20].hit + 1e-9

    def test_warm_masks_train_items(self, tiny_dataset):
        split = tiny_dataset.split
        scores = np.zeros((split.num_users, split.num_items))
        for user, items in split.ground_truth("warm_test").items():
            for item in items:
                scores[user, item] = 5.0
        for user, item in split.train:
            scores[user, item] = 100.0
        multi = evaluate_at_ks(FixedModel(scores), split, "warm_test",
                               ks=(20,))
        assert multi[20].hit == 1.0
