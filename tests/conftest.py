"""Shared fixtures: small synthetic datasets and trained-model caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.data.world import WorldConfig


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point ``REPRO_ARTIFACTS`` at a per-test temporary store.

    Any code path that falls back to the default artifact root (the CLI,
    the experiment runner, benchmark helpers) would otherwise write into
    — or silently reuse stale results from — the developer's
    ``.artifacts`` directory. Tests that care about a specific store
    still construct their own ``ArtifactStore(path)`` explicitly.
    """
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "artifacts"))


def tiny_config(seed: int = 0) -> WorldConfig:
    """A world small enough for sub-second model construction."""
    return WorldConfig(
        num_users=60,
        num_items=40,
        num_clusters=4,
        latent_dim=8,
        interactions_per_user_mean=8.0,
        text_feature_dim=12,
        image_feature_dim=16,
        vocab_size=120,
        cluster_vocab_size=12,
        num_brands=8,
        num_categories=5,
        seed=seed,
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    return build_dataset("tiny", tiny_config())


@pytest.fixture(scope="session")
def small_dataset():
    """Slightly larger world for evaluation-shape tests."""
    config = tiny_config(seed=1)
    config.num_users = 120
    config.num_items = 90
    return build_dataset("small", config)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
