"""Golden-fingerprint regression suite (ISSUE 6 satellite).

Each roster model trains once under the frozen protocol in
``protocol.py``; its fingerprint must equal the committed
``<model>.json`` next to this file, down to the last bit. A mismatch
means some change altered the training trajectory — if that was
intentional, regenerate with ``python tools/update_goldens.py`` (and
bump ``PIPELINE_VERSION`` when stored experiment artifacts go stale;
see ``docs/TESTING.md``). If it was not intentional, you found a
reproducibility regression before it shipped.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import protocol

HERE = Path(__file__).resolve().parent


def _committed(model_name: str) -> dict:
    path = HERE / f"{model_name}.json"
    assert path.exists(), (
        f"no committed golden for {model_name}; run "
        f"`python tools/update_goldens.py`")
    return json.loads(path.read_text())


@pytest.mark.parametrize("model_name", protocol.MODELS)
def test_fingerprint_matches_golden(model_name):
    committed = _committed(model_name)
    assert committed["protocol_version"] == protocol.PROTOCOL_VERSION, (
        "protocol changed without regenerating goldens")
    got = protocol.golden_fingerprint(model_name)
    want = committed["fingerprint"]
    mismatched = {key: (got[key], want[key])
                  for key in want if got[key] != want[key]}
    assert not mismatched, (
        f"{model_name} trajectory changed: {sorted(mismatched)} differ.\n"
        f"Intentional? -> python tools/update_goldens.py\n"
        f"{json.dumps(mismatched, indent=2)}")
