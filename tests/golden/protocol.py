"""The frozen golden-fingerprint training protocol.

One canonical short training run per roster model on the tiny synthetic
world. ``tests/golden/test_goldens.py`` asserts the resulting
:func:`repro.train.fingerprint.training_fingerprint` digests equal the
committed per-model JSON files next to it; ``tools/update_goldens.py``
regenerates those files when a trajectory change is *intentional* (and
``docs/TESTING.md`` says when that warrants a ``PIPELINE_VERSION``
bump).

Everything here is deliberately frozen — the world config, the model
roster, the training hyperparameters, the embedding size. Changing any
of it changes every fingerprint and must go through an explicit golden
update. That includes the array backend: goldens are a *reference*
(float64, bit-exact) artifact, so :func:`require_reference_backend`
fails loudly if ``REPRO_BACKEND`` forces the fast tier — fast-tier
closeness is pinned by the tolerance parity suite (``tests/backend/``),
never by goldens.
"""

from __future__ import annotations

from functools import lru_cache

from repro.backend import active as _active_backend
from repro.baselines import create_model
from repro.data import build_dataset
from repro.data.world import WorldConfig
from repro.train import TrainConfig, train_model
from repro.train.fingerprint import training_fingerprint

#: models with committed goldens (one JSON file per entry)
MODELS = ("BPR", "LightGCN", "KGAT", "Firzen")

#: bump together with the committed files when the protocol itself
#: changes (different world, epochs, roster, ...)
PROTOCOL_VERSION = 1

EMBEDDING_DIM = 16
SEED = 0


def golden_world() -> WorldConfig:
    return WorldConfig(
        num_users=60,
        num_items=40,
        num_clusters=4,
        latent_dim=8,
        interactions_per_user_mean=8.0,
        text_feature_dim=12,
        image_feature_dim=16,
        vocab_size=120,
        cluster_vocab_size=12,
        num_brands=8,
        num_categories=5,
        seed=0,
    )


def golden_train_config() -> TrainConfig:
    return TrainConfig(epochs=3, eval_every=2, batch_size=64,
                       learning_rate=0.05, patience=10, seed=0)


@lru_cache(maxsize=1)
def golden_dataset():
    return build_dataset("golden-tiny", golden_world())


def require_reference_backend() -> None:
    """Refuse to produce or check goldens on a non-reference backend.

    The committed fingerprints are defined on the reference backend
    only; a fast-tier run would either fail confusingly or — worse —
    silently re-record accelerated bits as the reference.
    """
    backend = _active_backend()
    if backend.name != "reference":
        raise RuntimeError(
            f"golden fingerprints are reference-backend artifacts, but "
            f"the active backend is {backend.name!r} (REPRO_BACKEND); "
            f"unset REPRO_BACKEND to run or update goldens")


def golden_fingerprint(model_name: str) -> dict[str, str]:
    """Train ``model_name`` under the frozen protocol and fingerprint
    the result (params + loss curve + RNG positions + combined)."""
    require_reference_backend()
    model = create_model(model_name, golden_dataset(),
                         embedding_dim=EMBEDDING_DIM, seed=SEED)
    result = train_model(model, golden_dataset(), golden_train_config())
    return training_fingerprint(model, result)
