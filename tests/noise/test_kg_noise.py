"""Tests for KG noise injection (Table V machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noise import (NOISE_KINDS, average_decrease, inject_discrepancies,
                         inject_duplicates, inject_noise, inject_outliers)


class TestOutliers:
    def test_adds_new_entities(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        noisy = inject_outliers(kg, 0.2, rng)
        added = noisy.num_triplets - kg.num_triplets
        assert added == int(round(0.2 * kg.num_triplets))
        assert noisy.num_entities == kg.num_entities + added

    def test_new_tails_outside_original_range(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        noisy = inject_outliers(kg, 0.1, rng)
        new = noisy.triplets[kg.num_triplets:]
        assert new[:, 2].min() >= kg.num_entities


class TestDuplicates:
    def test_adds_exact_copies(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        noisy = inject_duplicates(kg, 0.2, rng)
        assert noisy.num_triplets > kg.num_triplets
        # every added triplet already exists in the clean KG
        existing = kg.triplet_set()
        for row in noisy.triplets[kg.num_triplets:]:
            assert tuple(int(v) for v in row) in existing

    def test_entity_count_unchanged(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        noisy = inject_duplicates(kg, 0.2, rng)
        assert noisy.num_entities == kg.num_entities


class TestDiscrepancies:
    def test_tails_exist_but_triplets_invalid(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        noisy = inject_discrepancies(kg, 0.2, rng)
        existing = kg.triplet_set()
        added = noisy.triplets[kg.num_triplets:]
        assert added[:, 2].max() < kg.num_entities
        invalid = sum(tuple(int(v) for v in row) not in existing
                      for row in added)
        assert invalid / len(added) > 0.9


class TestDispatch:
    @pytest.mark.parametrize("kind", NOISE_KINDS)
    def test_all_kinds(self, tiny_dataset, rng, kind):
        noisy = inject_noise(tiny_dataset.kg, kind, 0.2, rng)
        assert noisy.num_triplets > tiny_dataset.kg.num_triplets

    def test_unknown_kind(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            inject_noise(tiny_dataset.kg, "gaussian", 0.2, rng)

    def test_original_untouched(self, tiny_dataset, rng):
        before = tiny_dataset.kg.num_triplets
        inject_noise(tiny_dataset.kg, "duplicate", 0.3, rng)
        assert tiny_dataset.kg.num_triplets == before


class TestAverageDecrease:
    def test_positive_degradation(self):
        assert average_decrease(0.10, 0.05) == pytest.approx(50.0)

    def test_improvement_is_negative(self):
        assert average_decrease(0.10, 0.11) == pytest.approx(-10.0)

    def test_zero_clean_guard(self):
        assert average_decrease(0.0, 0.5) == 0.0


class TestModelsTrainOnNoisyKG:
    @pytest.mark.parametrize("kind", NOISE_KINDS)
    def test_firzen_trains_with_noise(self, tiny_dataset, rng, kind):
        from repro.baselines import create_model
        from repro.train import TrainConfig, train_model
        noisy_ds = tiny_dataset.with_kg(
            inject_noise(tiny_dataset.kg, kind, 0.2, rng))
        model = create_model("CKE", noisy_ds, embedding_dim=8, seed=0)
        result = train_model(model, noisy_ds,
                             TrainConfig(epochs=2, eval_every=2,
                                         batch_size=128))
        assert np.isfinite(result.losses).all()
