"""Fault injection on the v2 dataset-directory write seam.

The chunked scale builder and ``save_dataset(format="v2")`` publish
through the same staged-write pattern as the serving store: arrays into
a ``*.tmp-<pid>`` sibling, manifest last, one atomic ``os.replace``.
The ``dataset.build.write`` seam lets the chaos suite kill or tear the
write between the arrays and the manifest — exactly what a real crash
leaves behind — and these tests pin the recovery contract: nothing
half-published, torn state rejected with a structured error, a clean
retry bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import save_dataset
from repro.data.io import (CorruptDatasetError, dataset_fingerprint,
                           load_dataset)
from repro.data.scale import build_scale_dataset, scale_config
from repro.reliability import (FaultPlan, FaultSpec, InjectedCrash,
                               inject)


@pytest.fixture(scope="module")
def config():
    return scale_config("tiny", seed=0, num_users=200, num_items=150)


class TestDatasetWriteFaults:
    def test_crash_never_publishes_and_leaves_staged(self, tiny_dataset,
                                                     tmp_path):
        path = tmp_path / "ds.v2"
        plan = FaultPlan([FaultSpec(op="dataset.build.write",
                                    kind="crash")], name="kill-v2")
        with inject(plan):
            with pytest.raises(InjectedCrash):
                save_dataset(tiny_dataset, path, format="v2")
        assert not path.exists()
        staged = list(tmp_path.glob("ds.v2.tmp-*"))
        assert staged, "simulated kill should leave the staged dir"
        # the staged dir is manifest-less: loading it is a structured
        # error naming the path, not a raw traceback
        with pytest.raises(CorruptDatasetError) as info:
            load_dataset(staged[0])
        assert str(staged[0]) in str(info.value)

    def test_clean_retry_round_trips(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.v2"
        plan = FaultPlan([FaultSpec(op="dataset.build.write",
                                    kind="crash", times=1)])
        with inject(plan):
            with pytest.raises(InjectedCrash):
                save_dataset(tiny_dataset, path, format="v2")
            save_dataset(tiny_dataset, path, format="v2")  # clean
        assert dataset_fingerprint(load_dataset(path)) == \
            dataset_fingerprint(tiny_dataset)

    def test_chunked_build_crash_then_rebuild_recovers(self, config,
                                                       tmp_path):
        out = tmp_path / "scale.v2"
        reference = dataset_fingerprint(build_scale_dataset(config))
        plan = FaultPlan([FaultSpec(op="dataset.build.write",
                                    kind="crash", times=1)],
                         name="kill-scale-build")
        with inject(plan):
            with pytest.raises(InjectedCrash):
                build_scale_dataset(config, chunk_rows=64, out=out)
            assert not out.exists()
            # recovery is simply rebuilding: deterministic generation
            # lands on the same bits the uninterrupted build produces
            rebuilt = build_scale_dataset(config, chunk_rows=64, out=out)
        assert dataset_fingerprint(rebuilt) == reference
        np.testing.assert_array_equal(
            np.asarray(load_dataset(out, mmap=True).split.train),
            np.asarray(rebuilt.split.train))

    def test_error_fault_aborts_the_staged_dir(self, tiny_dataset,
                                               tmp_path):
        """A plain (non-crash) failure mid-write cleans up after
        itself: no staged litter, no published dir."""
        path = tmp_path / "ds.v2"
        plan = FaultPlan([FaultSpec(op="dataset.build.write",
                                    kind="error")])
        with inject(plan):
            with pytest.raises(OSError):
                save_dataset(tiny_dataset, path, format="v2")
        assert not path.exists()
        assert not list(tmp_path.glob("ds.v2.tmp-*"))
