"""Fault-plan-driven torn writes, corruption, and quarantine/recompute.

ISSUE 9 satellite: torn-write rejection on both embedding-store formats
(v1 npz archive, v2 manifest directory) and ArtifactStore hash-mismatch
quarantine, all scripted through fault-injection plans rather than
hand-mangled files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.store import ArtifactStore
from repro.reliability import (FaultPlan, FaultSpec, InjectedCrash,
                               InjectedError, inject)
from repro.serve.store import CorruptStoreError, EmbeddingStore


def make_store(seed=0, num_items=20):
    rng = np.random.default_rng(seed)
    return EmbeddingStore(
        rng.normal(size=(10, 8)), rng.normal(size=(num_items, 8)),
        features={"image": rng.normal(size=(num_items, 4))},
        is_cold=rng.random(num_items) < 0.3)


class TestEmbeddingStoreTornWrites:
    def test_v1_torn_write_raises_corrupt_store_error(self, tmp_path):
        store = make_store()
        path = tmp_path / "store.npz"
        plan = FaultPlan([FaultSpec(op="store.v1.write", kind="torn")],
                         name="torn-v1")
        with inject(plan):
            with pytest.raises(InjectedCrash):
                store.save(path)
        # the kill left a truncated archive behind (v1 writes are not
        # atomic); loading it must produce the structured error, not a
        # raw zipfile traceback
        assert path.exists()
        with pytest.raises(CorruptStoreError) as info:
            EmbeddingStore.load(path)
        assert str(path) in str(info.value)

    def test_v1_torn_error_is_still_a_value_error(self, tmp_path):
        """Back-compat: callers catching ValueError keep working."""
        store = make_store()
        path = tmp_path / "store.npz"
        plan = FaultPlan([FaultSpec(op="store.v1.write", kind="torn")])
        with inject(plan):
            with pytest.raises(InjectedCrash):
                store.save(path)
        with pytest.raises(ValueError):
            EmbeddingStore.load(path)

    def test_v2_torn_write_never_publishes(self, tmp_path):
        store = make_store()
        path = tmp_path / "store.v2"
        plan = FaultPlan([FaultSpec(op="store.v2.write", kind="crash")],
                         name="kill-v2")
        with inject(plan):
            with pytest.raises(InjectedCrash):
                store.save(path, format="v2")
        # atomic publish: the final directory never appeared; the staged
        # dir (manifest-less, exactly what a real kill leaves) did
        assert not path.exists()
        staged = list(tmp_path.glob("store.v2.tmp-*"))
        assert staged, "simulated kill should leave the staged dir"
        with pytest.raises(ValueError, match="torn"):
            EmbeddingStore.load(staged[0])

    def test_v2_torn_staged_dir_rejected_with_clear_error(self, tmp_path):
        store = make_store()
        path = tmp_path / "store.v2"
        plan = FaultPlan([FaultSpec(op="store.v2.write", kind="torn")])
        with inject(plan):
            with pytest.raises(InjectedCrash):
                store.save(path, format="v2")
        staged = list(tmp_path.glob("store.v2.tmp-*"))
        assert staged
        with pytest.raises(CorruptStoreError):
            EmbeddingStore.load(staged[0])

    def test_v2_commit_after_clean_retry_round_trips(self, tmp_path):
        """After the fault window closes, a retried save publishes a
        store that loads bit-identically."""
        store = make_store()
        path = tmp_path / "store.v2"
        plan = FaultPlan([FaultSpec(op="store.v2.write", kind="crash",
                                    times=1)])
        with inject(plan):
            with pytest.raises(InjectedCrash):
                store.save(path, format="v2")
            store.save(path, format="v2")  # second call: clean
        loaded = EmbeddingStore.load(path)
        np.testing.assert_array_equal(loaded.user_vectors,
                                      store.user_vectors.astype(np.float32))

    def test_read_fault_surfaces_as_transient(self, tmp_path):
        store = make_store()
        path = tmp_path / "store.npz"
        store.save(path)
        plan = FaultPlan([FaultSpec(op="store.read", kind="error")])
        with inject(plan):
            with pytest.raises(OSError):
                EmbeddingStore.load(path)
            loaded = EmbeddingStore.load(path)  # window closed
        np.testing.assert_array_equal(loaded.item_vectors,
                                      store.item_vectors.astype(np.float32))


def _commit_blob(store: ArtifactStore, stage="train", key="k",
                 payload=b"payload-bytes", meta=None):
    staged = store.stage_dir(stage, key)
    (staged / "blob.bin").write_bytes(payload)
    return store.commit(stage, key, staged, meta or {"m": 1})


class TestArtifactStoreQuarantine:
    def test_clean_round_trip_verifies(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _commit_blob(store)
        path = store.get("train", "k")
        assert path is not None
        assert (path / "blob.bin").read_bytes() == b"payload-bytes"
        assert store.get_meta("train", "k") == {"m": 1}
        assert store.quarantined == []

    def test_corrupt_read_quarantines_and_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _commit_blob(store)
        # the read seam silently flips one byte of the artifact —
        # bit rot between commit and read
        plan = FaultPlan([FaultSpec(op="artifact.read", kind="corrupt")],
                         name="bitrot")
        with inject(plan):
            assert store.get("train", "k") is None
        assert len(store.quarantined) == 1
        stage, key, target = store.quarantined[0]
        assert (stage, key) == ("train", "k")
        # evidence preserved, entry gone from the live listing
        assert target.exists()
        assert store.entries("train") == []

    def test_recommit_after_quarantine_serves_again(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _commit_blob(store)
        plan = FaultPlan([FaultSpec(op="artifact.read", kind="corrupt")])
        with inject(plan):
            assert store.get("train", "k") is None
        # the recompute path: a fresh commit under the same key
        _commit_blob(store, payload=b"recomputed")
        path = store.get("train", "k")
        assert path is not None
        assert (path / "blob.bin").read_bytes() == b"recomputed"

    def test_verify_off_trusts_the_disk(self, tmp_path):
        store = ArtifactStore(tmp_path, verify_reads=False)
        _commit_blob(store)
        plan = FaultPlan([FaultSpec(op="artifact.read", kind="corrupt")])
        with inject(plan):
            assert store.get("train", "k") is not None
        assert store.quarantined == []

    def test_commit_crash_leaves_staged_never_half_commits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = FaultPlan([FaultSpec(op="artifact.commit", kind="crash")])
        with inject(plan):
            with pytest.raises(InjectedCrash):
                _commit_blob(store)
        assert store.get("train", "k") is None
        assert store.entries("train") == []
        # the staged temp dir survives the simulated kill (the next
        # commit under the key simply replaces it)
        assert list((tmp_path / "train").glob("k.tmp-*"))

    def test_quarantine_names_do_not_collide(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for round_no in range(3):
            _commit_blob(store, payload=b"x%d" % round_no)
            plan = FaultPlan([FaultSpec(op="artifact.read",
                                        kind="corrupt")])
            with inject(plan):
                assert store.get("train", "k") is None
        names = sorted(p.name for p in (tmp_path / "train").iterdir())
        assert [n for n in names if ".quarantine-" in n] == \
            ["k.quarantine-0", "k.quarantine-1", "k.quarantine-2"]


class TestRunnerDegradation:
    """The runner survives transient faults and corrupt cache entries."""

    def _spec(self):
        from repro.experiments import ExperimentSpec
        from repro.train import TrainConfig
        return ExperimentSpec(
            name="chaos-tiny", dataset="custom",
            world={"num_users": 30, "num_items": 40, "num_brands": 4,
                   "seed": 0},
            models=("BPR",), embedding_dim=8,
            train=TrainConfig(epochs=1, eval_every=1, batch_size=32,
                              learning_rate=0.05))

    def test_transient_read_faults_are_retried(self, tmp_path):
        from repro.experiments import Runner
        store = ArtifactStore(tmp_path / "store")
        runner = Runner(store)
        spec = self._spec()
        runner.run(spec)  # populate the cache

        fresh = Runner(ArtifactStore(tmp_path / "store"))
        plan = FaultPlan([FaultSpec(op="artifact.read", kind="error",
                                    times=2)], name="flaky-disk")
        with inject(plan):
            run = fresh.run(spec)
        assert fresh.stats["read_retries"] >= 2
        assert fresh.stats["train_runs"] == 0  # cache hits, not retrains
        assert "BPR" in run.results

    def test_corrupt_train_artifact_is_recomputed(self, tmp_path):
        from repro.experiments import Runner
        store = ArtifactStore(tmp_path / "store")
        runner = Runner(store)
        spec = self._spec()
        reference = runner.run(spec)

        fresh_store = ArtifactStore(tmp_path / "store")
        fresh = Runner(fresh_store)
        # corrupt the first train-stage read: the store must quarantine
        # it and the runner retrain — and land on the same bits (seeded)
        plan = FaultPlan(
            [FaultSpec(op="artifact.read", kind="corrupt", at=2)],
            name="poisoned-cache")
        with inject(plan):
            # at=2: first artifact.read is the dataset stage, second is
            # the train stage (glob 'at' counts matching calls)
            rerun = fresh.run(spec)
        assert any(stage == "train"
                   for stage, _k, _p in fresh_store.quarantined) or \
            any(stage == "dataset"
                for stage, _k, _p in fresh_store.quarantined)
        assert rerun.fingerprint == reference.fingerprint
