"""Retry/backoff policy: determinism, budget, and what is retryable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (FaultPlan, FaultSpec, InjectedCrash,
                               InjectedError, RetryBudgetExceeded,
                               backoff_schedule, inject, retry_call)


class TestBackoffSchedule:
    def test_deterministic_for_a_seed(self):
        first = backoff_schedule(5, rng=np.random.default_rng(42))
        second = backoff_schedule(5, rng=np.random.default_rng(42))
        assert first == second
        assert len(first) == 4

    def test_default_seed_is_fixed(self):
        assert backoff_schedule(4) == backoff_schedule(4)

    def test_exponential_growth_capped(self):
        schedule = backoff_schedule(8, base_delay=0.1, max_delay=0.4,
                                    jitter=0.0)
        assert schedule == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4, 0.4, 0.4])

    def test_jitter_bounds(self):
        schedule = backoff_schedule(50, base_delay=1.0, max_delay=1.0,
                                    jitter=0.5,
                                    rng=np.random.default_rng(0))
        assert all(0.5 <= delay <= 1.5 for delay in schedule)


class TestRetryCall:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        assert retry_call(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_then_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        retries = []
        result = retry_call(
            flaky, attempts=3, sleep=lambda _s: None,
            on_retry=lambda attempt, exc, delay: retries.append(attempt))
        assert result == "ok"
        assert retries == [0, 1]

    def test_budget_exhaustion_wraps_last_error(self):
        def always():
            raise TimeoutError("still down")

        with pytest.raises(RetryBudgetExceeded) as info:
            retry_call(always, attempts=3, sleep=lambda _s: None)
        assert isinstance(info.value.last, TimeoutError)
        assert "3 attempt" in str(info.value)

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("logic bug")

        with pytest.raises(KeyError):
            retry_call(broken, attempts=5, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_injected_crash_is_not_retried(self):
        """A simulated kill must never be absorbed by a retry loop."""
        plan = FaultPlan([FaultSpec(op="x", kind="crash")])
        calls = {"n": 0}

        def seamed():
            calls["n"] += 1
            from repro.reliability import fire
            fire("x")

        with inject(plan):
            with pytest.raises(InjectedCrash):
                retry_call(seamed, attempts=5, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_injected_error_is_transient(self):
        """InjectedError is an OSError, so the default policy retries
        through a fault window that then closes."""
        plan = FaultPlan([FaultSpec(op="x", kind="error", times=2)])
        calls = {"n": 0}

        def seamed():
            calls["n"] += 1
            from repro.reliability import fire
            fire("x")
            return "recovered"

        with inject(plan):
            assert retry_call(seamed, attempts=3,
                              sleep=lambda _s: None) == "recovered"
        assert calls["n"] == 3

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry_call(lambda: 1, attempts=0)
