"""Daemon degradation under load and faults: shed, deadline, drain,
structured errors, and the never-torn-response guarantee.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.reliability import FaultPlan, FaultSpec, inject
from repro.serve import (BatchRanker, DeadlineExceededError,
                         EmbeddingStore, LoadShedError, MicroBatcher,
                         ServingDaemon, SnapshotManager)


def make_store(seed, num_items=40):
    rng = np.random.default_rng(seed)
    return EmbeddingStore(
        rng.normal(size=(20, 8)), rng.normal(size=(num_items, 8)),
        features={"image": rng.normal(size=(num_items, 5))},
        is_cold=rng.random(num_items) < 0.3,
        metadata={"model": f"seed{seed}"})


@pytest.fixture()
def manager():
    return SnapshotManager(make_store(1))


def _get_raw(url: str) -> tuple[int, dict, dict]:
    """(status, headers, json body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read()))
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        return error.code, dict(error.headers), body


class TestBoundedAdmission:
    def test_full_queue_sheds_instead_of_queueing(self, manager):
        # a slow fault holds the worker inside a batch so the queue
        # backs up deterministically
        plan = FaultPlan([FaultSpec(op="daemon.batch", kind="slow",
                                    delay_ms=200.0, times=-1)])
        batcher = MicroBatcher(manager, max_batch=1, max_queue=2)
        try:
            with inject(plan):
                futures = [batcher.submit(0, 5)]  # worker picks this up
                time.sleep(0.05)                  # worker now sleeping
                futures.append(batcher.submit(1, 5))
                futures.append(batcher.submit(2, 5))
                with pytest.raises(LoadShedError) as info:
                    batcher.submit(3, 5)
                assert info.value.reason == "queue_full"
                for future in futures:
                    assert future.result(timeout=30)["items"]
        finally:
            batcher.stop()
        assert batcher.stats()["shed"] == 1
        assert batcher.stats()["requests"] == 3

    def test_shed_maps_to_503_with_retry_after(self, manager):
        plan = FaultPlan([FaultSpec(op="daemon.batch", kind="slow",
                                    delay_ms=300.0, times=-1)])
        with ServingDaemon(manager, max_batch=1, max_queue=1) as daemon:
            with inject(plan):
                statuses = []

                def client(user):
                    status, headers, body = _get_raw(
                        f"{daemon.url}/topk?user={user}&k=5")
                    statuses.append((status, headers, body))

                threads = [threading.Thread(target=client, args=(u,))
                           for u in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
        shed = [s for s in statuses if s[0] == 503]
        served = [s for s in statuses if s[0] == 200]
        assert shed, "overload must produce 503s"
        assert served, "the bounded queue must still serve some"
        for status, headers, body in shed:
            assert headers.get("Retry-After")
            assert "error" in body
            assert "snapshot_version" in body
        assert len(shed) + len(served) == 6


class TestDeadlines:
    def test_expired_request_gets_deadline_error(self, manager):
        plan = FaultPlan([FaultSpec(op="daemon.batch", kind="slow",
                                    delay_ms=150.0)])
        batcher = MicroBatcher(manager, max_batch=1, deadline_ms=50.0)
        try:
            with inject(plan):
                first = batcher.submit(0, 5)   # served; batch is slow
                time.sleep(0.02)
                second = batcher.submit(1, 5)  # expires while queued
                assert first.result(timeout=30)["items"]
                with pytest.raises(DeadlineExceededError):
                    second.result(timeout=30)
        finally:
            batcher.stop()
        assert batcher.stats()["expired"] == 1

    def test_deadline_maps_to_504(self, manager):
        plan = FaultPlan([FaultSpec(op="daemon.batch", kind="slow",
                                    delay_ms=200.0)])
        with ServingDaemon(manager, max_batch=1,
                           deadline_ms=50.0) as daemon:
            with inject(plan):
                results = []

                def client(user):
                    results.append(_get_raw(
                        f"{daemon.url}/topk?user={user}&k=5"))

                threads = [threading.Thread(target=client, args=(u,))
                           for u in range(4)]
                for thread in threads:
                    thread.start()
                    time.sleep(0.02)
                for thread in threads:
                    thread.join(timeout=30)
        codes = sorted(status for status, _h, _b in results)
        assert 504 in codes, codes
        for status, _headers, body in results:
            if status == 504:
                assert "error" in body

    def test_no_deadline_by_default(self, manager):
        batcher = MicroBatcher(manager)
        try:
            assert batcher.deadline_ms is None
            assert batcher.submit(0, 5).result(timeout=30)["items"]
        finally:
            batcher.stop()


class TestGracefulDrain:
    def test_drain_finishes_inflight_then_rejects(self, manager):
        plan = FaultPlan([FaultSpec(op="daemon.batch", kind="slow",
                                    delay_ms=100.0)])
        batcher = MicroBatcher(manager, max_batch=4)
        try:
            with inject(plan):
                futures = [batcher.submit(u, 5) for u in range(4)]
                assert batcher.drain(grace_s=5.0) is True
            # every in-flight request completed with real results
            for future in futures:
                assert future.result(timeout=1)["items"]
            with pytest.raises(LoadShedError) as info:
                batcher.submit(0, 5)
            assert info.value.reason == "draining"
        finally:
            batcher.stop()

    def test_healthz_flips_to_draining(self, manager):
        with ServingDaemon(manager) as daemon:
            status, _headers, body = _get_raw(daemon.url + "/healthz")
            assert (status, body["status"]) == (200, "ok")
            daemon.batcher.drain(grace_s=1.0)
            status, headers, body = _get_raw(daemon.url + "/healthz")
            assert (status, body["status"]) == (503, "draining")
            assert headers.get("Retry-After")
            # mutating endpoints are rejected while draining
            request = urllib.request.Request(
                daemon.url + "/swap",
                data=json.dumps({"path": "/nope"}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            assert info.value.code == 503

    def test_shutdown_grace_is_configurable(self, manager):
        daemon = ServingDaemon(manager, shutdown_grace_s=0.5)
        daemon.start()
        start = time.perf_counter()
        daemon.shutdown()
        assert time.perf_counter() - start < 5.0
        assert daemon.draining


class TestStructuredErrors:
    def test_unknown_endpoint_is_json_404(self, manager):
        with ServingDaemon(manager) as daemon:
            status, headers, body = _get_raw(daemon.url + "/nope")
            assert status == 404
            assert headers["Content-Type"] == "application/json"
            assert "error" in body and "snapshot_version" in body

    def test_stdlib_error_paths_emit_json_not_html(self, manager):
        """An unsupported method goes through the stdlib's send_error,
        which the handler overrides: the body must be JSON."""
        with ServingDaemon(manager) as daemon:
            request = urllib.request.Request(daemon.url + "/topk?user=0",
                                             method="PUT")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            body = info.value.read()
            assert b"<html" not in body.lower()
            assert "error" in json.loads(body)

    def test_bad_request_carries_snapshot_version(self, manager):
        with ServingDaemon(manager) as daemon:
            status, _headers, body = _get_raw(
                daemon.url + "/topk?user=notanint")
            assert status == 400
            assert body["snapshot_version"] == 1

    def test_batch_fault_surfaces_as_500_never_torn(self, manager):
        """Under a seeded fault plan on the batch seam, every response
        is either a clean JSON error or a bit-exact ranking for the
        version it claims — never a torn payload."""
        store = manager.current.store
        reference = BatchRanker.from_store(store).topk(
            np.arange(store.num_users), 5)
        plan = FaultPlan(
            [FaultSpec(op="daemon.batch", kind="error", at=2, times=2)],
            seed=9, name="flaky-batches")
        outcomes = {"ok": 0, "error": 0}
        with ServingDaemon(manager, max_batch=1) as daemon:
            with inject(plan):
                for user in range(12):
                    status, _headers, body = _get_raw(
                        f"{daemon.url}/topk?user={user % 20}&k=5")
                    if status == 200:
                        outcomes["ok"] += 1
                        assert body["snapshot_version"] == 1
                        assert body["items"] == \
                            reference.items[user % 20].tolist()
                    else:
                        outcomes["error"] += 1
                        assert status == 500
                        assert "error" in body
        assert outcomes["error"] == 2  # exactly the scripted window
        assert outcomes["ok"] == 10
        assert [e[1:4] for e in plan.event_log()] == [
            ("daemon.batch", "error", 2), ("daemon.batch", "error", 3)]
