"""Chaos suite for training: injected kills at every snapshot boundary
must resume bit-exactly; corrupt snapshots degrade to a clean restart.

Builds on the resume machinery proven in tests/train/test_resume.py,
but drives the kills through fault plans (the ``train.epoch.end`` and
``train.snapshot.write`` seams) instead of a cooperative epoch hook —
an injected :class:`InjectedCrash` is a ``BaseException``, so nothing
in the trainer's recovery paths can accidentally absorb it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.reliability import FaultPlan, FaultSpec, InjectedCrash, inject
from repro.train import TrainConfig, train_model
from repro.train.fingerprint import training_fingerprint
from repro.train.snapshot import CorruptSnapshotError, \
    load_training_snapshot


def _config(epochs: int = 4) -> TrainConfig:
    return TrainConfig(epochs=epochs, eval_every=2, batch_size=64,
                       learning_rate=0.05, patience=10)


def _fresh(dataset, name="BPR"):
    return create_model(name, dataset, embedding_dim=16, seed=0)


def _assert_state_equal(left: dict, right: dict, context: str) -> None:
    assert set(left) == set(right), context
    for key in left:
        assert np.array_equal(left[key], right[key]), (context, key)


def test_injected_kill_at_every_epoch_boundary_resumes_bit_exact(
        tiny_dataset, tmp_path):
    """The tentpole guarantee: for every snapshot boundary, a scripted
    crash there + resume lands on the reference run's exact bits."""
    config = _config(epochs=4)
    reference = _fresh(tiny_dataset)
    ref_result = train_model(reference, tiny_dataset, config)
    expected_fp = training_fingerprint(reference, ref_result)

    for kill_epoch in range(1, config.epochs):
        snapshot = tmp_path / f"kill{kill_epoch}.npz"
        plan = FaultPlan(
            [FaultSpec(op="train.epoch.end", kind="crash",
                       at=kill_epoch)],
            name=f"kill-after-epoch-{kill_epoch}")
        victim = _fresh(tiny_dataset)
        with inject(plan):
            with pytest.raises(InjectedCrash):
                train_model(victim, tiny_dataset, config,
                            snapshot_path=snapshot)
        assert [e[1:3] for e in plan.event_log()] == \
            [("train.epoch.end", "crash")]

        # "new process": fresh model objects, resume from the snapshot
        resumed = _fresh(tiny_dataset)
        res_result = train_model(resumed, tiny_dataset, config,
                                 snapshot_path=snapshot)
        _assert_state_equal(reference.state_dict(), resumed.state_dict(),
                            f"kill after epoch {kill_epoch}")
        assert res_result.losses == ref_result.losses
        resumed_fp = training_fingerprint(resumed, res_result)
        assert resumed_fp["combined"] == expected_fp["combined"], \
            f"fingerprint diverged after kill at epoch {kill_epoch}"


def test_same_fault_seed_reproduces_identical_failure_sequence(
        tiny_dataset, tmp_path):
    """Acceptance criterion: replaying the same plan over the same run
    produces the identical event log."""
    config = _config(epochs=3)

    def one_run(tag):
        plan = FaultPlan([FaultSpec(op="train.epoch.end", kind="crash",
                                    at=2)], seed=1234, name="replay")
        victim = _fresh(tiny_dataset)
        with inject(plan):
            with pytest.raises(InjectedCrash):
                train_model(victim, tiny_dataset, config,
                            snapshot_path=tmp_path / f"{tag}.npz")
        return plan.event_log()

    assert one_run("first") == one_run("second")


def test_kill_during_snapshot_write_keeps_previous_snapshot(
        tiny_dataset, tmp_path):
    """A torn snapshot *write* may not damage the previous snapshot:
    the temp-file + rename protocol means resume restarts from the last
    published epoch."""
    config = _config(epochs=3)
    snapshot = tmp_path / "snap.npz"
    # epoch 1's snapshot lands, epoch 2's write is killed mid-file
    plan = FaultPlan([FaultSpec(op="train.snapshot.write", kind="torn",
                                at=2)], name="torn-snapshot-write")
    victim = _fresh(tiny_dataset)
    with inject(plan):
        with pytest.raises(InjectedCrash):
            train_model(victim, tiny_dataset, config,
                        snapshot_path=snapshot)
    # previous snapshot intact and loadable: epoch 0-indexed 0
    loaded = load_training_snapshot(snapshot)
    assert loaded.epoch == 0
    # and resume completes to the reference bits
    reference = _fresh(tiny_dataset)
    train_model(reference, tiny_dataset, config)
    resumed = _fresh(tiny_dataset)
    train_model(resumed, tiny_dataset, config, snapshot_path=snapshot)
    _assert_state_equal(reference.state_dict(), resumed.state_dict(),
                        "resume after torn snapshot write")


def test_corrupt_snapshot_raises_structured_error(tiny_dataset, tmp_path):
    config = _config(epochs=2)
    snapshot = tmp_path / "snap.npz"
    model = _fresh(tiny_dataset)
    train_model(model, tiny_dataset, config, snapshot_path=snapshot)
    # tear the published snapshot itself (bit rot / partial copy)
    from repro.reliability.faults import tear_file
    tear_file(snapshot, keep_fraction=0.4)
    with pytest.raises(CorruptSnapshotError) as info:
        load_training_snapshot(snapshot)
    assert str(snapshot) in str(info.value)
    assert isinstance(info.value, ValueError)  # back-compat


def test_trainer_degrades_gracefully_on_corrupt_snapshot(
        tiny_dataset, tmp_path):
    """A damaged snapshot is treated as no snapshot: the trainer warns,
    restarts from scratch, and (being deterministic) still produces the
    reference bits."""
    config = _config(epochs=3)
    reference = _fresh(tiny_dataset)
    ref_result = train_model(reference, tiny_dataset, config)

    snapshot = tmp_path / "snap.npz"
    victim = _fresh(tiny_dataset)
    plan = FaultPlan([FaultSpec(op="train.epoch.end", kind="crash",
                                at=1)])
    with inject(plan):
        with pytest.raises(InjectedCrash):
            train_model(victim, tiny_dataset, config,
                        snapshot_path=snapshot)
    from repro.reliability.faults import tear_file
    tear_file(snapshot, keep_fraction=0.3)

    resumed = _fresh(tiny_dataset)
    with pytest.warns(RuntimeWarning, match="corrupt training snapshot"):
        res_result = train_model(resumed, tiny_dataset, config,
                                 snapshot_path=snapshot)
    _assert_state_equal(reference.state_dict(), resumed.state_dict(),
                        "restart after corrupt snapshot")
    assert res_result.losses == ref_result.losses


def test_transient_snapshot_read_fault_is_not_swallowed(
        tiny_dataset, tmp_path):
    """An injected transient *read* error is not corruption: it must
    surface (the runner's retry layer handles it), not silently restart
    training from scratch."""
    config = _config(epochs=2)
    snapshot = tmp_path / "snap.npz"
    model = _fresh(tiny_dataset)
    train_model(model, tiny_dataset, config, snapshot_path=snapshot)

    plan = FaultPlan([FaultSpec(op="train.snapshot.read", kind="error")])
    fresh = _fresh(tiny_dataset)
    with inject(plan):
        with pytest.raises(OSError):
            train_model(fresh, tiny_dataset, config,
                        snapshot_path=snapshot)
