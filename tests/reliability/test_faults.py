"""Fault-plan semantics: kinds, counters, determinism, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (FaultPlan, FaultSpec, InjectedCrash,
                               InjectedError, InjectedTimeout, active_plan,
                               fire, inject, is_injected_crash)
from repro.reliability.faults import flip_byte, plan_from_env, tear_file


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(op="x", kind="explode")

    def test_bad_indices_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(op="x", kind="error", at=0)
        with pytest.raises(ValueError):
            FaultSpec(op="x", kind="error", times=0)
        with pytest.raises(ValueError):
            FaultSpec(op="x", kind="error", times=-2)

    def test_covers_window(self):
        spec = FaultSpec(op="x", kind="error", at=2, times=3)
        assert [spec.covers(i) for i in range(1, 7)] == \
            [False, True, True, True, False, False]

    def test_covers_forever(self):
        spec = FaultSpec(op="x", kind="error", at=3, times=-1)
        assert not spec.covers(2)
        assert all(spec.covers(i) for i in (3, 10, 1000))


class TestFirePlumbing:
    def test_noop_without_plan(self):
        assert active_plan() is None
        fire("anything")  # must not raise

    def test_error_fires_at_index(self):
        plan = FaultPlan([FaultSpec(op="op.a", kind="error", at=2)])
        with inject(plan):
            fire("op.a")                 # call 1: clean
            with pytest.raises(InjectedError):
                fire("op.a")             # call 2: fires
            fire("op.a")                 # call 3: window passed
        assert [e[1:4] for e in plan.event_log()] == [("op.a", "error", 2)]

    def test_timeout_and_crash_kinds(self):
        plan = FaultPlan([FaultSpec(op="t", kind="timeout"),
                          FaultSpec(op="c", kind="crash")])
        with inject(plan):
            with pytest.raises(InjectedTimeout):
                fire("t")
            with pytest.raises(InjectedCrash) as info:
                fire("c")
        assert is_injected_crash(info.value)
        # a simulated kill is not an Exception: `except Exception` code
        # cannot swallow it
        assert not isinstance(info.value, Exception)

    def test_glob_patterns_match_seams(self):
        plan = FaultPlan([FaultSpec(op="store.*", kind="error",
                                    times=-1)])
        with inject(plan):
            with pytest.raises(InjectedError):
                fire("store.v1.write")
            with pytest.raises(InjectedError):
                fire("store.read")
            fire("artifact.read")  # unmatched op: clean

    def test_torn_without_path_is_a_seam_bug(self):
        plan = FaultPlan([FaultSpec(op="x", kind="torn")])
        with inject(plan):
            with pytest.raises(RuntimeError, match="needs"):
                fire("x")

    def test_nested_inject_rejected(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="already active"):
                with inject(FaultPlan()):
                    pass
        assert active_plan() is None

    def test_plan_deactivated_after_block(self):
        plan = FaultPlan([FaultSpec(op="x", kind="error")])
        with pytest.raises(InjectedError):
            with inject(plan):
                fire("x")
        assert active_plan() is None
        fire("x")  # no longer active


class TestDeterminism:
    def _drive(self, plan):
        """A fixed operation sequence with faults swallowed, as the
        chaos harness would run it."""
        plan.reset()
        with inject(plan):
            for op in ("a", "b", "a", "a", "b", "a"):
                try:
                    fire(op)
                except (InjectedError, InjectedCrash):
                    pass
        return plan.event_log()

    def test_same_plan_same_ops_same_events(self):
        plan = FaultPlan([FaultSpec(op="a", kind="error", at=2, times=2),
                          FaultSpec(op="b", kind="crash", at=2)],
                         seed=7, name="det")
        first = self._drive(plan)
        second = self._drive(plan)
        assert first == second
        assert [e[1:4] for e in first] == [
            ("a", "error", 2), ("a", "error", 3), ("b", "crash", 2)]

    def test_json_round_trip_preserves_firing(self):
        plan = FaultPlan([FaultSpec(op="a", kind="error", at=2, times=2),
                          FaultSpec(op="b", kind="crash", at=2)],
                         seed=7, name="det")
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.name == plan.name
        assert clone.specs == plan.specs
        assert self._drive(plan) == self._drive(clone)

    def test_save_load_file(self, tmp_path):
        plan = FaultPlan([FaultSpec(op="x", kind="slow", delay_ms=1.0)],
                         seed=3, name="file")
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded.specs == plan.specs
        assert loaded.seed == 3

    def test_plan_from_env(self, tmp_path, monkeypatch):
        assert plan_from_env({}) is None
        path = FaultPlan([FaultSpec(op="x", kind="error")],
                         name="env").save(tmp_path / "p.json")
        plan = plan_from_env({"REPRO_FAULT_PLAN": str(path)})
        assert plan is not None and plan.name == "env"


class TestMangling:
    def test_tear_file_keeps_prefix(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        tear_file(path, keep_fraction=0.25)
        assert path.read_bytes() == bytes(range(25))

    def test_tear_directory_drops_manifest(self, tmp_path):
        d = tmp_path / "staged"
        d.mkdir()
        (d / "a.npy").write_bytes(b"data")
        (d / "manifest.json").write_text("{}")
        tear_file(d)
        assert not (d / "manifest.json").exists()
        assert (d / "a.npy").exists()

    def test_flip_byte_changes_exactly_one_byte(self, tmp_path):
        path = tmp_path / "blob.bin"
        original = bytes(range(64))
        path.write_bytes(original)
        flip_byte(path)
        mutated = path.read_bytes()
        assert len(mutated) == len(original)
        assert sum(a != b for a, b in zip(original, mutated)) == 1

    def test_corrupt_kind_is_silent(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(64))
        plan = FaultPlan([FaultSpec(op="x", kind="corrupt")])
        with inject(plan):
            fire("x", path=path)  # silent: no exception
        assert path.read_bytes() != bytes(64)

    def test_slow_kind_sleeps_and_continues(self):
        import time
        plan = FaultPlan([FaultSpec(op="x", kind="slow", delay_ms=30.0)])
        with inject(plan):
            start = time.perf_counter()
            fire("x")
            assert time.perf_counter() - start >= 0.025
