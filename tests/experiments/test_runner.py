"""Runner: cached stages, cross-process resume, parity with the direct
pipeline."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import create_model
from repro.eval import evaluate_model
from repro.experiments import (ArtifactStore, ExperimentSpec, Runner,
                               comparison_rows)
from repro.train import TrainConfig, train_model

TINY_WORLD = {
    "num_users": 60,
    "num_items": 40,
    "num_clusters": 4,
    "latent_dim": 8,
    "interactions_per_user_mean": 8.0,
    "text_feature_dim": 12,
    "image_feature_dim": 16,
    "vocab_size": 120,
    "cluster_vocab_size": 12,
    "num_brands": 8,
    "num_categories": 5,
    "seed": 0,
}


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="tiny", dataset="custom", world=dict(TINY_WORLD),
        models=("BPR", "LightGCN"), embedding_dim=16,
        train=TrainConfig(epochs=2, eval_every=1, batch_size=64,
                          learning_rate=0.05))
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture()
def runner(tmp_path) -> Runner:
    return Runner(ArtifactStore(tmp_path / "store"))


class TestStages:
    def test_all_three_stages_commit_artifacts(self, runner):
        spec = tiny_spec()
        run = runner.run(spec)
        assert runner.store.get("dataset", spec.dataset_key())
        for model in spec.models:
            assert runner.store.get("train", spec.train_key(model))
            assert runner.store.get("eval", spec.eval_key(model))
        assert set(run.results) == set(spec.models)

    def test_second_run_is_served_from_memo(self, runner):
        spec = tiny_spec()
        runner.run(spec)
        before = dict(runner.stats)
        runner.run(spec)
        assert runner.stats == before

    def test_new_runner_resumes_from_the_store(self, runner, tmp_path):
        spec = tiny_spec()
        fingerprint = runner.run(spec).fingerprint
        fresh = Runner(ArtifactStore(tmp_path / "store"))
        run = fresh.run(spec)
        assert fresh.stats["train_runs"] == 0
        assert fresh.stats["dataset_builds"] == 0
        assert fresh.stats["eval_runs"] == 0
        assert run.fingerprint == fingerprint

    def test_stop_after_train_then_resume(self, runner, tmp_path):
        spec = tiny_spec()
        partial = runner.run(spec, stop_after="train")
        assert partial.completed_stage == "train"
        assert not partial.results
        resumer = Runner(ArtifactStore(tmp_path / "store"))
        run = resumer.run(spec)
        assert resumer.stats["train_runs"] == 0
        cold = Runner(ArtifactStore(tmp_path / "cold"))
        assert run.fingerprint == cold.run(spec).fingerprint

    def test_refresh_retrains(self, runner, tmp_path):
        spec = tiny_spec()
        fingerprint = runner.run(spec).fingerprint
        forced = Runner(ArtifactStore(tmp_path / "store"), refresh=True)
        run = forced.run(spec)
        assert forced.stats["train_runs"] == len(spec.models)
        assert run.fingerprint == fingerprint


class TestParityWithDirectPipeline:
    def test_metrics_match_the_unpiped_path_bitwise(self, runner):
        """Runner-produced metrics (via artifacts) equal the direct
        dataset->train->eval code path float-for-float — the byte
        identity the regenerated results/ tables rely on."""
        spec = tiny_spec(models=("BPR",))
        run = runner.run(spec)

        from repro.data.datasets import build_dataset
        from repro.data.world import WorldConfig
        dataset = build_dataset("custom", WorldConfig(**TINY_WORLD))
        model = create_model("BPR", dataset, embedding_dim=16, seed=0)
        train_model(model, dataset, spec.train)
        direct = evaluate_model(model, dataset.split, k=spec.eval_k)

        assert run.results["BPR"]["cold"] == direct.cold
        assert run.results["BPR"]["warm"] == direct.warm

    def test_eval_artifact_roundtrips_floats_exactly(self, runner,
                                                     tmp_path):
        spec = tiny_spec(models=("BPR",))
        live = runner.run(spec).results["BPR"]
        reloaded = Runner(ArtifactStore(tmp_path / "store")) \
            .evaluation(spec, "BPR")
        assert reloaded == live

    def test_training_killed_mid_run_resumes_to_the_same_fingerprint(
            self, runner, tmp_path):
        spec = tiny_spec(models=("BPR",),
                         train=TrainConfig(epochs=3, eval_every=1,
                                           batch_size=64,
                                           learning_rate=0.05))
        reference = runner.run(spec).fingerprint

        killed = Runner(ArtifactStore(tmp_path / "killed"))
        dataset = killed.dataset(spec)
        key = spec.train_key("BPR")
        snapshot = killed.store.partial_dir("train", key) / "snapshot.npz"
        victim = killed._create_model(spec, "BPR", dataset)

        class _Killed(Exception):
            pass

        def kill_hook(epoch, model):
            if epoch == 0:
                raise _Killed()

        with pytest.raises(_Killed):
            train_model(victim, dataset, spec.train,
                        snapshot_path=snapshot, epoch_hook=kill_hook)
        assert snapshot.exists()

        run = killed.run(spec)
        assert run.fingerprint == reference
        assert not snapshot.exists(), "partial state must be cleared"


class TestScenarios:
    def test_inference_scenarios_share_the_trained_artifact(self, runner):
        base = tiny_spec(models=("Firzen",),
                         train=TrainConfig(epochs=1, eval_every=1,
                                           batch_size=64,
                                           learning_rate=0.05))
        runner.run(base)
        trained_runs = runner.stats["train_runs"]
        gated = dataclasses.replace(
            base, scenarios=(("modality_mask",
                              {"modalities": ["text"],
                               "use_knowledge": False}),))
        gated.__post_init__()
        run = runner.run(gated)
        assert runner.stats["train_runs"] == trained_runs
        # gating changes the cold metrics, and the shared model's config
        # is restored afterwards
        model, _ = runner.trained(base, "Firzen")
        assert model.config.inference_modalities is None
        assert run.results["Firzen"]["cold"] != \
            runner.run(base).results["Firzen"]["cold"]

    def test_normal_cold_leaves_the_shared_model_unmutated(self, runner):
        spec = tiny_spec(models=("LightGCN",),
                         scenarios=(("normal_cold", {}),),
                         train=TrainConfig(epochs=1, eval_every=1,
                                           batch_size=64,
                                           learning_rate=0.05))
        run = runner.run(spec)
        assert set(run.results["LightGCN"]) == {"strict_unknown",
                                                "normal"}
        base = dataclasses.replace(spec, scenarios=())
        base.__post_init__()
        model, _ = runner.trained(base, "LightGCN")
        # the shared model still scores against the original (strict)
        # interaction graph: its strict cold evaluation is unchanged
        direct = evaluate_model(model,
                                runner.dataset(base).split).cold
        fresh = Runner(ArtifactStore(runner.store.root))
        assert direct == fresh.run(base).results["LightGCN"]["cold"]

    def test_dataset_scenarios_build_their_own_stage(self, runner):
        base = tiny_spec(models=())
        noisy = tiny_spec(models=(),
                          scenarios=(("kg_noise", {"kind": "outlier"}),))
        plain = runner.dataset(base)
        transformed = runner.dataset(noisy)
        assert transformed.kg.num_triplets > plain.kg.num_triplets
        assert runner.store.get("dataset", base.dataset_key())
        assert runner.store.get("dataset", noisy.dataset_key())
        assert base.dataset_key() != noisy.dataset_key()


class TestWorldHandling:
    def test_require_world_rebuilds_when_loaded_from_store(self, runner,
                                                           tmp_path):
        spec = tiny_spec(models=())
        runner.dataset(spec)
        fresh = Runner(ArtifactStore(tmp_path / "store"))
        loaded = fresh.dataset(spec)
        assert loaded.world is None  # archive stores the contract only
        rebuilt = fresh.dataset(spec, require_world=True)
        assert rebuilt.world is not None
        # the rebuilt dataset matches the archived arrays exactly
        assert np.array_equal(loaded.split.train, rebuilt.split.train)
        for modality in loaded.features:
            assert np.array_equal(loaded.features[modality],
                                  rebuilt.features[modality])
        assert np.array_equal(loaded.kg.triplets, rebuilt.kg.triplets)


class TestScaleDatasetStage:
    """dataset="scale" routes through the chunked out-of-core builder
    and persists as a mmap-able v2 directory."""

    def _scale_spec(self, **overrides):
        base = dict(
            name="scale-tiny", dataset="scale", size="tiny",
            world={"num_users": 300, "num_items": 200},
            models=("BPR",), embedding_dim=8,
            train=TrainConfig(epochs=1, eval_every=1, batch_size=128,
                              learning_rate=0.05))
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_commits_a_v2_directory_artifact(self, runner):
        spec = self._scale_spec()
        runner.run(spec)
        committed = runner.store.get("dataset", spec.dataset_key())
        assert committed is not None
        assert (committed / "dataset.v2" / "manifest.json").exists()
        assert not (committed / "dataset.npz").exists()

    def test_resume_from_mmap_artifact_is_bit_identical(self, runner,
                                                        tmp_path):
        spec = self._scale_spec()
        fingerprint = runner.run(spec).fingerprint
        fresh = Runner(ArtifactStore(tmp_path / "store"))
        rerun = fresh.run(spec)
        assert fresh.stats["dataset_builds"] == 0
        assert fresh.stats["train_runs"] == 0
        assert rerun.fingerprint == fingerprint

    def test_size_sweep_over_scale_datasets(self, runner):
        from repro.experiments import expand_sweep
        spec = self._scale_spec(sweep=("size", ("tiny",)))
        for _value, child in expand_sweep(spec):
            run = runner.run(child)
            assert "BPR" in run.results
