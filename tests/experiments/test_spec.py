"""ExperimentSpec: canonical hashing, content addresses, sweeps."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import ExperimentSpec, content_key, expand_sweep
from repro.experiments.spec import canonical
from repro.train import TrainConfig


def _spec(**overrides) -> ExperimentSpec:
    base = dict(name="t", dataset="beauty", size="tiny",
                models=("BPR", "LightGCN"),
                train=TrainConfig(epochs=2, eval_every=1))
    base.update(overrides)
    return ExperimentSpec(**base)


class TestCanonical:
    def test_dict_order_is_irrelevant(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_dataclasses_canonicalize_to_their_fields(self):
        assert canonical(TrainConfig()) == canonical(
            dataclasses.asdict(TrainConfig()))

    def test_unhashable_objects_are_rejected(self):
        with pytest.raises(TypeError):
            content_key({"fn": object()})

    def test_numpy_scalars_match_python_scalars(self):
        import numpy as np
        assert content_key({"x": np.float64(0.5)}) == content_key({"x": 0.5})


class TestContentAddresses:
    def test_train_key_is_roster_independent(self):
        solo = _spec(models=("BPR",))
        duo = _spec(models=("BPR", "LightGCN"))
        assert solo.train_key("BPR") == duo.train_key("BPR")

    def test_train_key_changes_with_epochs(self):
        assert _spec().train_key("BPR") != _spec(
            train=TrainConfig(epochs=3, eval_every=1)).train_key("BPR")

    def test_train_key_changes_with_model_kwargs(self):
        tweaked = _spec(model_kwargs={"BPR": {"reg_weight": 0.01}})
        assert tweaked.train_key("BPR") != _spec().train_key("BPR")
        # ... but only for the model that was tweaked
        assert tweaked.train_key("LightGCN") == _spec().train_key("LightGCN")

    def test_dataset_key_ignores_train_config(self):
        assert _spec().dataset_key() == _spec(
            train=TrainConfig(epochs=9)).dataset_key()

    def test_dataset_steps_change_dataset_and_train_keys(self):
        noisy = _spec(scenarios=(("kg_noise", {"kind": "outlier"}),))
        assert noisy.dataset_key() != _spec().dataset_key()
        assert noisy.train_key("BPR") != _spec().train_key("BPR")

    def test_inference_steps_change_only_eval_key(self):
        gated = _spec(scenarios=(("modality_mask",
                                  {"modalities": ["text"]}),))
        assert gated.dataset_key() == _spec().dataset_key()
        assert gated.train_key("BPR") == _spec().train_key("BPR")
        assert gated.eval_key("BPR") != _spec().eval_key("BPR")

    def test_name_is_not_part_of_the_address(self):
        assert _spec(name="a").train_key("BPR") == \
            _spec(name="b").train_key("BPR")


class TestSerialization:
    def test_json_roundtrip_preserves_addresses(self):
        spec = _spec(scenarios=(("kg_noise", {"kind": "outlier"}),),
                     model_kwargs={"BPR": {"reg_weight": 0.01}})
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.dataset_key() == spec.dataset_key()
        for model in spec.models:
            assert restored.train_key(model) == spec.train_key(model)
            assert restored.eval_key(model) == spec.eval_key(model)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="tiny, small, medium"):
            _spec(size="enormous")

    def test_with_overrides(self):
        spec = _spec().with_overrides(epochs=7, size="small")
        assert spec.train.epochs == 7
        assert spec.size == "small"
        # the original is untouched
        assert _spec().train.epochs == 2


class TestSweep:
    def test_expansion_produces_distinct_addresses(self):
        spec = _spec(models=("Firzen",),
                     sweep=("lambda_k", (0.0, 0.5, 1.0)))
        children = expand_sweep(spec)
        assert [value for value, _ in children] == [0.0, 0.5, 1.0]
        keys = {child.train_key("Firzen") for _, child in children}
        assert len(keys) == 3
        for value, child in children:
            assert not child.sweep
            assert child.model_kwargs["Firzen"]["config"]["lambda_k"] \
                == value

    def test_no_sweep_returns_the_spec_itself(self):
        spec = _spec()
        assert expand_sweep(spec) == [(None, spec)]

    def test_size_sweep_expands_to_size_variants(self):
        spec = _spec(dataset="scale", size="tiny",
                     sweep=("size", ("tiny", "small")))
        children = expand_sweep(spec)
        assert [child.size for _, child in children] == ["tiny", "small"]
        for value, child in children:
            assert not child.sweep
            assert f"size={value}" in child.name
        keys = {child.dataset_key() for _, child in children}
        assert len(keys) == 2  # size is part of the dataset address

    def test_large_sizes_are_valid(self):
        assert _spec(size="xlarge").size == "xlarge"
