"""Scenario registry and the built-in transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (available_scenarios, get_scenario,
                               register_scenario)
from repro.experiments.scenarios import (apply_dataset_steps,
                                         apply_inference_steps)
from repro.experiments.spec import ScenarioStep


class TestRegistry:
    def test_builtins_are_registered(self):
        names = set(available_scenarios())
        assert {"kg_noise", "cold_ratio", "modality_mask",
                "normal_cold"} <= names

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_unknown_stage_rejected_at_registration(self):
        with pytest.raises(ValueError, match="dataset, inference, eval"):
            register_scenario("bad", "training")(lambda d: d)

    def test_stages(self):
        assert get_scenario("kg_noise").stage == "dataset"
        assert get_scenario("modality_mask").stage == "inference"
        assert get_scenario("normal_cold").stage == "eval"
        assert get_scenario("normal_cold").fresh_model


class TestKgNoise:
    def test_injects_triplets(self, tiny_dataset):
        noisy = apply_dataset_steps(
            tiny_dataset,
            [ScenarioStep("kg_noise", {"kind": "outlier", "rate": 0.2,
                                       "seed": 13})])
        assert noisy.kg.num_triplets > tiny_dataset.kg.num_triplets
        # split and features are shared, the original KG is untouched
        assert noisy.split is tiny_dataset.split

    def test_matches_direct_injection(self, tiny_dataset):
        """The scenario is byte-equivalent to the hand-rolled harness
        code it replaced (same kind, rate, and RNG seed)."""
        from repro.noise import inject_noise
        direct = inject_noise(tiny_dataset.kg, "duplicate", 0.2,
                              np.random.default_rng(13))
        via_scenario = apply_dataset_steps(
            tiny_dataset,
            [ScenarioStep("kg_noise", {"kind": "duplicate"})]).kg
        assert np.array_equal(direct.triplets, via_scenario.triplets)

    def test_unknown_kind_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown noise kind"):
            get_scenario("kg_noise").fn(tiny_dataset, kind="smudge")


class TestColdRatio:
    def test_resplits_to_requested_fraction(self, tiny_dataset):
        resplit = apply_dataset_steps(
            tiny_dataset,
            [ScenarioStep("cold_ratio", {"fraction": 0.4, "seed": 3})])
        ratio = len(resplit.split.cold_items) / resplit.num_items
        assert 0.3 <= ratio <= 0.5
        assert resplit.split is not tiny_dataset.split
        # the interaction universe is preserved
        def total(ds):
            s = ds.split
            return sum(len(part) for part in (
                s.train, s.warm_val, s.warm_test, s.cold_val, s.cold_test))
        assert total(resplit) == total(tiny_dataset)
        # normal cold-start refinement is populated for Table VI flows
        assert resplit.split.cold_test_known is not None


class TestModalityMask:
    def test_apply_and_undo_restore_config(self, tiny_dataset):
        from repro.baselines import create_model
        model = create_model("Firzen", tiny_dataset, embedding_dim=16,
                             seed=0)
        undo = apply_inference_steps(
            model, [ScenarioStep("modality_mask",
                                 {"modalities": ["text"],
                                  "use_knowledge": False})])
        assert model.config.inference_modalities == ("text",)
        assert model.config.inference_use_knowledge is False
        undo()
        assert model.config.inference_modalities is None
        assert model.config.inference_use_knowledge is None
