"""ArtifactStore: atomic commits, content addressing, partial state."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ArtifactStore


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


class TestCommit:
    def test_staged_dir_is_invisible_until_committed(self, store):
        staged = store.stage_dir("train", "k1")
        (staged / "model.npz").write_bytes(b"payload")
        assert store.get("train", "k1") is None
        store.commit("train", "k1", staged, {"model": "BPR"})
        committed = store.get("train", "k1")
        assert committed is not None
        assert (committed / "model.npz").read_bytes() == b"payload"
        assert store.get_meta("train", "k1") == {"model": "BPR"}

    def test_losing_a_commit_race_keeps_the_winner(self, store):
        first = store.stage_dir("eval", "k")
        (first / "a.txt").write_text("first")
        store.commit("eval", "k", first, {})
        second = store.stage_dir("eval", "k")
        (second / "a.txt").write_text("second")
        store.commit("eval", "k", second, {})
        assert (store.get("eval", "k") / "a.txt").read_text() == "first"
        assert not second.exists()

    def test_overwrite_replaces_the_existing_artifact(self, store):
        first = store.stage_dir("eval", "k")
        (first / "a.txt").write_text("first")
        store.commit("eval", "k", first, {})
        second = store.stage_dir("eval", "k")
        (second / "a.txt").write_text("second")
        store.commit("eval", "k", second, {}, overwrite=True)
        assert (store.get("eval", "k") / "a.txt").read_text() == "second"

    def test_json_roundtrip_is_exact_for_floats(self, store):
        payload = {"recall": 0.1 + 0.2, "mrr": 1e-17, "k": 20}
        store.put_json("eval", "k", payload)
        assert store.get_json("eval", "k") == payload

    def test_meta_json_is_valid_json(self, store):
        staged = store.stage_dir("dataset", "k")
        store.commit("dataset", "k", staged, {"size": "tiny"})
        meta_path = store.get("dataset", "k") / "meta.json"
        assert json.loads(meta_path.read_text()) == {"size": "tiny"}


class TestPartial:
    def test_partial_dir_is_not_a_committed_artifact(self, store):
        partial = store.partial_dir("train", "k")
        (partial / "snapshot.npz").write_bytes(b"wip")
        assert store.get("train", "k") is None
        assert "k" not in store.entries("train")

    def test_clear_partial(self, store):
        partial = store.partial_dir("train", "k")
        (partial / "snapshot.npz").write_bytes(b"wip")
        store.clear_partial("train", "k")
        assert not partial.exists()


class TestListing:
    def test_entries_lists_only_committed_keys(self, store):
        assert store.entries("train") == []
        store.put_json("train", "b", {})
        store.put_json("train", "a", {})
        store.partial_dir("train", "c")
        assert store.entries("train") == ["a", "b"]

    def test_remove_drops_artifact_and_partial(self, store):
        store.put_json("train", "k", {})
        store.partial_dir("train", "k")
        store.remove("train", "k")
        assert store.get("train", "k") is None
        assert store.entries("train") == []
