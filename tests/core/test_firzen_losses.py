"""Tests for Firzen's multi-task objective decomposition (eq. 32)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FirzenConfig, FirzenModel


def _model(dataset, **config_kwargs):
    config = FirzenConfig(embedding_dim=16, **config_kwargs)
    return FirzenModel(dataset, 16, np.random.default_rng(0), config=config)


def _warm_batch(dataset):
    warm = dataset.split.warm_items
    return np.array([0, 1, 2, 3]), warm[:4], warm[4:8]


class TestObjectiveTerms:
    def test_adv_weight_changes_loss(self, tiny_dataset):
        users, pos, neg = _warm_batch(tiny_dataset)
        base = _model(tiny_dataset, adv_weight=0.0, contrastive_weight=0.0,
                      modality_dropout=0.0)
        with_adv = _model(tiny_dataset, adv_weight=0.5,
                          contrastive_weight=0.0, modality_dropout=0.0)
        assert base.loss(users, pos, neg).item() \
            != pytest.approx(with_adv.loss(users, pos, neg).item())

    def test_contrastive_weight_changes_loss(self, tiny_dataset):
        users, pos, neg = _warm_batch(tiny_dataset)
        base = _model(tiny_dataset, adv_weight=0.0, contrastive_weight=0.0,
                      modality_dropout=0.0)
        with_cl = _model(tiny_dataset, adv_weight=0.0,
                         contrastive_weight=0.5, modality_dropout=0.0)
        assert base.loss(users, pos, neg).item() \
            != pytest.approx(with_cl.loss(users, pos, neg).item())

    def test_loss_differentiable_end_to_end(self, tiny_dataset):
        users, pos, neg = _warm_batch(tiny_dataset)
        model = _model(tiny_dataset)
        loss = model.loss(users, pos, neg)
        loss.backward()
        # Every major parameter group receives gradient.
        assert model.user_emb.weight.grad is not None
        assert model.item_emb.weight.grad is not None
        for encoder in model.modality_encoders.values():
            assert encoder.projector.weight.grad is not None
        assert model.knowledge.entity_emb.weight.grad is not None

    def test_discriminator_not_updated_by_generator_loss(self, tiny_dataset):
        """The adversarial term in loss() trains the *generator* side; the
        discriminator's own update happens in extra_step."""
        users, pos, neg = _warm_batch(tiny_dataset)
        model = _model(tiny_dataset, adv_weight=0.5)
        before = model.discriminator.state_dict()
        loss = model.loss(users, pos, neg)
        loss.backward()
        # gradient may exist, but the trainer only steps model.parameters()
        # through the main optimizer — discriminator has its own.
        # Here we check extra_step actually moves the discriminator.
        model.extra_step()
        after = model.discriminator.state_dict()
        moved = any(not np.allclose(before[k], after[k]) for k in before)
        assert moved

    def test_kg_alternating_step_moves_entities(self, tiny_dataset):
        model = _model(tiny_dataset, kg_batches=1, kg_batch_size=64)
        before = model.knowledge.entity_emb.weight.data.copy()
        model.extra_step()
        assert not np.allclose(before,
                               model.knowledge.entity_emb.weight.data)

    def test_beta_update_follows_discriminator(self, tiny_dataset):
        model = _model(tiny_dataset, beta_momentum=0.5)
        model._last_disc_scores = {"text": 3.0, "image": 0.0}
        model.on_epoch_end(0)
        assert model.beta["text"] > model.beta["image"]

    def test_freeze_beta_blocks_update(self, tiny_dataset):
        model = _model(tiny_dataset, beta_momentum=0.5, freeze_beta=True)
        model._last_disc_scores = {"text": 3.0, "image": 0.0}
        model.on_epoch_end(0)
        assert model.beta["text"] == pytest.approx(0.5)
