"""Unit tests for MSHGL propagation and fusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.config import FirzenConfig
from repro.core.mshgl import MSHGL, ItemItemPropagation, UserUserPropagation
from repro.graphs.item_item import build_item_item_graphs
from repro.graphs.user_user import UserUserGraph
from repro.graphs.interaction import InteractionGraph


@pytest.fixture()
def graphs(tiny_dataset):
    item_graphs = build_item_item_graphs(
        tiny_dataset.features, 5, tiny_dataset.split.warm_items,
        tiny_dataset.split.is_cold)
    inter = InteractionGraph(tiny_dataset.num_users, tiny_dataset.num_items,
                             tiny_dataset.split.train)
    user_graph = UserUserGraph(inter.user_item_matrix, 5)
    return item_graphs, user_graph


class TestItemItemPropagation:
    def test_layer_mean_keeps_residual(self, tiny_dataset, graphs, rng):
        item_graphs, _ = graphs
        prop = ItemItemPropagation(item_graphs["text"], 1, layer_mean=True)
        x = Tensor(rng.normal(size=(tiny_dataset.num_items, 8)))
        out = prop(x, "infer")
        # isolated rows (if any) keep x/2; connected rows mix
        assert out.shape == x.shape
        assert not np.allclose(out.data, x.data)

    def test_pure_propagation_mode(self, tiny_dataset, graphs, rng):
        item_graphs, _ = graphs
        prop = ItemItemPropagation(item_graphs["text"], 1, layer_mean=False)
        x = Tensor(rng.normal(size=(tiny_dataset.num_items, 8)))
        out = prop(x, "train")
        cold = tiny_dataset.split.cold_items
        # train graph has no cold edges -> cold rows are exactly zero
        np.testing.assert_allclose(out.data[cold], 0.0, atol=1e-12)


class TestUserUserPropagation:
    def test_attention_is_convex_combination(self, tiny_dataset, graphs):
        _, user_graph = graphs
        prop = UserUserPropagation(user_graph, 1)
        x = Tensor(np.ones((tiny_dataset.num_users, 4)))
        out = prop(x)
        # rows with neighbors average ones -> stay one; empty rows -> zero
        row_nnz = np.diff(user_graph.attention.indptr)
        np.testing.assert_allclose(out.data[row_nnz > 0], 1.0, atol=1e-9)
        np.testing.assert_allclose(out.data[row_nnz == 0], 0.0, atol=1e-12)


class TestMSHGL:
    def test_forward_shapes(self, tiny_dataset, graphs, rng):
        item_graphs, user_graph = graphs
        config = FirzenConfig(embedding_dim=16)
        mshgl = MSHGL(config, item_graphs, user_graph, rng)
        users = Tensor(rng.normal(size=(tiny_dataset.num_users, 16)))
        items = Tensor(rng.normal(size=(tiny_dataset.num_items, 16)))
        final_u, final_i = mshgl(users, items, "infer")
        assert final_u.shape == users.shape
        assert final_i.shape == items.shape

    def test_modality_gating(self, tiny_dataset, graphs, rng):
        item_graphs, user_graph = graphs
        config = FirzenConfig(embedding_dim=16)
        mshgl = MSHGL(config, item_graphs, user_graph, rng)
        users = Tensor(rng.normal(size=(tiny_dataset.num_users, 16)))
        items = Tensor(rng.normal(size=(tiny_dataset.num_items, 16)))
        _, full = mshgl(users, items, "infer")
        _, text_only = mshgl(users, items, "infer",
                             active_modalities=("text",))
        assert not np.allclose(full.data, text_only.data)

    def test_empty_gating_passthrough(self, tiny_dataset, graphs, rng):
        item_graphs, user_graph = graphs
        config = FirzenConfig(embedding_dim=16)
        mshgl = MSHGL(config, item_graphs, user_graph, rng)
        users = Tensor(rng.normal(size=(tiny_dataset.num_users, 16)))
        items = Tensor(rng.normal(size=(tiny_dataset.num_items, 16)))
        _, gated = mshgl(users, items, "infer", active_modalities=())
        np.testing.assert_allclose(gated.data, items.data)
