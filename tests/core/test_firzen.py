"""Integration tests for the Firzen model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FirzenConfig, FirzenModel
from repro.eval import evaluate_model
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=3, eval_every=3, batch_size=128,
                    learning_rate=0.05)


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    model = FirzenModel(tiny_dataset, embedding_dim=16,
                        rng=np.random.default_rng(0))
    result = train_model(model, tiny_dataset, QUICK)
    return model, result


class TestTraining:
    def test_losses_finite(self, trained):
        _, result = trained
        assert np.isfinite(result.losses).all()

    def test_beta_stays_normalized(self, trained):
        model, _ = trained
        total = sum(model.beta.values())
        assert total == pytest.approx(1.0, abs=1e-6)
        assert all(0.0 < b < 1.0 for b in model.beta.values())

    def test_evaluation_in_range(self, trained, tiny_dataset):
        model, _ = trained
        bundle = evaluate_model(model, tiny_dataset.split, k=10)
        for metrics in (bundle.cold, bundle.warm, bundle.hm):
            assert 0.0 <= metrics.recall <= 1.0

    def test_scores_finite(self, trained, tiny_dataset):
        model, _ = trained
        scores = model.score_users(np.arange(4))
        assert np.isfinite(scores).all()


class TestColdPath:
    def test_cold_items_receive_warm_signal(self, trained, tiny_dataset):
        """At inference the item-item graphs must propagate into cold rows:
        a cold item's final representation cannot equal its SAHGL-only
        fused embedding."""
        model, _ = trained
        fused_u, fused_i, _ = model._sahgl(model.modalities)
        final_u, final_i, _ = model._forward("infer")
        cold = tiny_dataset.split.cold_items
        assert not np.allclose(final_i.data[cold], fused_i.data[cold])

    def test_train_mode_excludes_cold(self, trained, tiny_dataset):
        """During training the item-item graph covers warm items only, so a
        cold item's MSHGL input/output may differ only through layer-0
        (identity) content."""
        model, _ = trained
        for graph in model.item_graphs.values():
            train_adj = graph.adjacency("train").toarray()
            cold = tiny_dataset.split.cold_items
            assert train_adj[cold].sum() == 0
            assert train_adj[:, cold].sum() == 0

    def test_mask_blocks_cold_to_warm(self, trained, tiny_dataset):
        model, _ = trained
        cold = tiny_dataset.split.is_cold
        for graph in model.item_graphs.values():
            infer = graph.adjacency("infer").toarray()
            assert infer[~cold][:, cold].sum() == 0


class TestAblationConfigs:
    @pytest.mark.parametrize("toggle", ["use_behavior", "use_knowledge",
                                        "use_modality", "use_mshgl"])
    def test_component_removal_trains(self, tiny_dataset, toggle):
        config = FirzenConfig(embedding_dim=16, **{toggle: False})
        model = FirzenModel(tiny_dataset, 16, np.random.default_rng(0),
                            config=config)
        result = train_model(model, tiny_dataset,
                             TrainConfig(epochs=2, eval_every=2,
                                         batch_size=128))
        assert np.isfinite(result.losses).all()
        scores = model.score_users(np.arange(3))
        assert np.isfinite(scores).all()

    def test_modality_subset(self, tiny_dataset):
        model = FirzenModel(tiny_dataset, 16, np.random.default_rng(0),
                            modalities=("text",))
        train_model(model, tiny_dataset, QUICK)
        assert model.modalities == ("text",)
        assert np.isfinite(model.score_users(np.arange(2))).all()

    def test_no_modalities_at_all(self, tiny_dataset):
        model = FirzenModel(tiny_dataset, 16, np.random.default_rng(0),
                            modalities=(),
                            config=FirzenConfig(embedding_dim=16,
                                                use_mshgl=False))
        train_model(model, tiny_dataset, QUICK)
        assert np.isfinite(model.score_users(np.arange(2))).all()


class TestInferenceGating:
    def test_gated_inference_changes_scores(self, trained, tiny_dataset):
        """Table VIII mechanism: disabling a modality at inference changes
        the representations."""
        model, _ = trained
        full = model.score_users(np.arange(4)).copy()
        model.config.inference_modalities = ("text",)
        model.invalidate()
        gated = model.score_users(np.arange(4))
        model.config.inference_modalities = None
        model.invalidate()
        assert not np.allclose(full, gated)

    def test_mask_toggle_changes_cold_rows(self, trained, tiny_dataset):
        model, _ = trained
        model.invalidate()
        masked = model.item_matrix().copy()
        model.config.mask_cold_to_warm = False
        model.invalidate()
        unmasked = model.item_matrix().copy()
        model.config.mask_cold_to_warm = True
        model.invalidate()
        warm = ~tiny_dataset.split.is_cold
        # removing the mask lets cold signal reach warm rows
        assert not np.allclose(masked[warm], unmasked[warm])
