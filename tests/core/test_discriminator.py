"""Tests for the WGAN-GP discriminator and the augmented graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.discriminator import (GraphRowDiscriminator,
                                      gumbel_augmented_graph)


class TestDiscriminator:
    def test_score_in_unit_interval(self, rng):
        disc = GraphRowDiscriminator(20, 8, rng)
        score = disc(Tensor(rng.normal(size=(6, 20))))
        assert 0.0 <= score.item() <= 1.0

    def test_gradient_penalty_finite_and_nonnegative(self, rng):
        disc = GraphRowDiscriminator(20, 8, rng)
        penalty = disc.gradient_penalty(Tensor(rng.normal(size=(6, 20))))
        assert penalty.item() >= 0.0
        assert np.isfinite(penalty.item())

    def test_penalty_backpropagates_to_weights(self, rng):
        disc = GraphRowDiscriminator(20, 8, rng)
        disc.gradient_penalty(Tensor(rng.normal(size=(6, 20)))).backward()
        grads = [p.grad for p in disc.parameters() if p.grad is not None]
        assert grads, "penalty produced no weight gradients"

    def test_can_learn_to_separate(self, rng):
        """A short adversarial fit must push real scores above fake."""
        from repro.autograd.optim import Adam
        disc = GraphRowDiscriminator(10, 8, rng)
        opt = Adam(disc.parameters(), lr=0.02)
        real = rng.normal(2.0, 0.5, size=(32, 10))
        fake = rng.normal(-2.0, 0.5, size=(32, 10))
        for _ in range(60):
            opt.zero_grad()
            loss = disc(Tensor(fake)) - disc(Tensor(real))
            loss.backward()
            opt.step()
        disc.eval()
        assert disc(Tensor(real)).item() > disc(Tensor(fake)).item()


class TestAugmentedGraph:
    def test_rows_are_distributions_plus_aux(self, rng):
        observed = (rng.random((4, 10)) > 0.7).astype(float)
        users = np.arange(4)
        user_final = rng.normal(size=(4, 6))
        item_final = rng.normal(size=(10, 6))
        out = gumbel_augmented_graph(observed, user_final, item_final,
                                     users, 0.5, 0.0, rng)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    def test_aux_signal_shifts_rows(self, rng):
        observed = (rng.random((4, 10)) > 0.7).astype(float)
        users = np.arange(4)
        user_final = rng.normal(size=(4, 6))
        item_final = rng.normal(size=(10, 6))
        base_rng = np.random.default_rng(42)
        without = gumbel_augmented_graph(observed, user_final, item_final,
                                         users, 0.5, 0.0,
                                         np.random.default_rng(42))
        with_aux = gumbel_augmented_graph(observed, user_final, item_final,
                                          users, 0.5, 0.5,
                                          np.random.default_rng(42))
        assert not np.allclose(without, with_aux)

    def test_output_finite(self, rng):
        observed = np.zeros((3, 8))
        out = gumbel_augmented_graph(
            observed, rng.normal(size=(3, 4)), rng.normal(size=(8, 4)),
            np.arange(3), 0.5, 0.1, rng)
        assert np.isfinite(out).all()
