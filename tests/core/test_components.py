"""Tests for shared model components: segments, KGAT attention, TransR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.components.segments import (segment_indicator, segment_mean,
                                       segment_softmax_weighted_sum)
from repro.components.kgat import KnowledgeGraphAttention
from repro.components.transr import TransRScorer, transr_loss
from repro.graphs.ckg import build_collaborative_kg


class TestSegments:
    def test_indicator_sums(self):
        ids = np.array([0, 0, 1, 2])
        indicator = segment_indicator(ids, 3)
        values = np.array([[1.0], [2.0], [3.0], [4.0]])
        out = indicator @ values
        np.testing.assert_allclose(out.ravel(), [3.0, 3.0, 4.0])

    def test_segment_softmax_uniform_logits(self, rng):
        """Equal logits -> plain mean within each segment."""
        ids = np.array([0, 0, 1])
        logits = Tensor(np.zeros(3))
        values = Tensor(np.array([[2.0, 0.0], [4.0, 2.0], [5.0, 5.0]]))
        out = segment_softmax_weighted_sum(logits, values, ids, 2)
        np.testing.assert_allclose(out.data, [[3.0, 1.0], [5.0, 5.0]])

    def test_segment_softmax_respects_logits(self):
        ids = np.array([0, 0])
        logits = Tensor(np.array([10.0, -10.0]))
        values = Tensor(np.array([[1.0], [100.0]]))
        out = segment_softmax_weighted_sum(logits, values, ids, 1)
        assert out.data[0, 0] < 2.0  # dominated by the first value

    def test_segment_softmax_gradcheck(self, rng):
        ids = np.array([0, 0, 1, 1, 1])
        logits_np = rng.normal(size=5)
        values_np = rng.normal(size=(5, 2))

        def f(logits, values):
            return segment_softmax_weighted_sum(logits, values, ids, 2)

        logits = Tensor(logits_np, requires_grad=True)
        values = Tensor(values_np, requires_grad=True)
        f(logits, values).sum().backward()

        eps = 1e-6
        for i in range(5):
            logits_np[i] += eps
            plus = f(Tensor(logits_np), Tensor(values_np)).data.sum()
            logits_np[i] -= 2 * eps
            minus = f(Tensor(logits_np), Tensor(values_np)).data.sum()
            logits_np[i] += eps
            np.testing.assert_allclose(
                logits.grad[i], (plus - minus) / (2 * eps), atol=1e-4)

    def test_segment_mean(self):
        ids = np.array([0, 0, 1])
        values = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(values, ids, 3)
        np.testing.assert_allclose(out.data.ravel(), [3.0, 6.0, 0.0])


class TestKGATAttention:
    def test_forward_shape_and_gradients(self, tiny_dataset, rng):
        ckg = build_collaborative_kg(
            tiny_dataset.kg, tiny_dataset.split.train, tiny_dataset.num_users)
        layer = KnowledgeGraphAttention(ckg, 8, 8, rng)
        nodes = Tensor(rng.normal(size=(ckg.num_nodes, 8)),
                       requires_grad=True)
        out = layer(nodes)
        assert out.shape == (ckg.num_nodes, 8)
        out.sum().backward()
        assert nodes.grad is not None
        assert layer.relation_emb.grad is not None

    def test_isolated_node_keeps_self_transform(self, tiny_dataset, rng):
        """Nodes with no outgoing triplets get zero neighborhood; output is
        the bi-interaction of (x, 0) which is finite."""
        ckg = build_collaborative_kg(
            tiny_dataset.kg, tiny_dataset.split.train, tiny_dataset.num_users)
        layer = KnowledgeGraphAttention(ckg, 8, 8, rng)
        nodes = Tensor(rng.normal(size=(ckg.num_nodes, 8)))
        out = layer(nodes)
        assert np.isfinite(out.data).all()


class TestTransR:
    def test_valid_triplets_score_higher_after_training(self, tiny_dataset,
                                                        rng):
        from repro.autograd.optim import Adam
        from repro.graphs.ckg import sample_kg_negatives
        kg = tiny_dataset.kg
        scorer = TransRScorer(kg.num_relations, 8, 8, rng)
        entities = Tensor(rng.normal(size=(kg.num_entities, 8)) * 0.1,
                          requires_grad=True)
        opt = Adam(scorer.parameters() + [entities], lr=0.05)
        sample_rng = np.random.default_rng(1)
        for _ in range(30):
            h, r, tp, tn = sample_kg_negatives(kg, 128, sample_rng)
            opt.zero_grad()
            loss = transr_loss(scorer, entities, h, r, tp, tn)
            loss.backward()
            opt.step()
        h, r, tp, tn = sample_kg_negatives(kg, 256,
                                           np.random.default_rng(2))
        pos = scorer.score(entities, h, r, tp).data
        neg = scorer.score(entities, h, r, tn).data
        assert (pos > neg).mean() > 0.8

    def test_score_order_matches_input(self, tiny_dataset, rng):
        kg = tiny_dataset.kg
        scorer = TransRScorer(kg.num_relations, 8, 8, rng)
        entities = Tensor(rng.normal(size=(kg.num_entities, 8)))
        idx = rng.integers(0, kg.num_triplets, size=16)
        h, r, t = (kg.triplets[idx, 0], kg.triplets[idx, 1],
                   kg.triplets[idx, 2])
        batched = scorer.score(entities, h, r, t).data
        singles = np.array([
            scorer.score(entities, h[i:i + 1], r[i:i + 1],
                         t[i:i + 1]).data[0]
            for i in range(16)])
        np.testing.assert_allclose(batched, singles, atol=1e-10)
