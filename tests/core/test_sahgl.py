"""Unit tests for the SAHGL encoders and importance fusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.nn import Embedding
from repro.core.config import FirzenConfig
from repro.core.sahgl import (BehaviorEncoder, ImportanceFusion,
                              KnowledgeEncoder, ModalityEncoder)
from repro.graphs.ckg import build_collaborative_kg
from repro.graphs.interaction import InteractionGraph


@pytest.fixture()
def graph(tiny_dataset):
    return InteractionGraph(tiny_dataset.num_users, tiny_dataset.num_items,
                            tiny_dataset.split.train)


class TestBehaviorEncoder:
    def test_output_shapes(self, tiny_dataset, graph, rng):
        u = Embedding(tiny_dataset.num_users, 16, rng)
        i = Embedding(tiny_dataset.num_items, 16, rng)
        encoder = BehaviorEncoder(graph, u, i, num_layers=2)
        user_out, item_out = encoder()
        assert user_out.shape == (tiny_dataset.num_users, 16)
        assert item_out.shape == (tiny_dataset.num_items, 16)


class TestModalityEncoder:
    def test_cold_items_get_zero(self, tiny_dataset, graph, rng):
        """eq. 8 aggregates over interactions; cold items have none."""
        encoder = ModalityEncoder(tiny_dataset, graph, "text", 16, 0.0, rng)
        encoder.eval()
        x_u, x_i, projected = encoder()
        cold = tiny_dataset.split.cold_items
        np.testing.assert_allclose(x_i.data[cold], 0.0, atol=1e-12)

    def test_projected_covers_all_items(self, tiny_dataset, graph, rng):
        encoder = ModalityEncoder(tiny_dataset, graph, "text", 16, 0.0, rng)
        encoder.eval()
        _, _, projected = encoder()
        assert projected.shape == (tiny_dataset.num_items, 16)
        assert np.isfinite(projected.data).all()

    def test_user_part_depends_on_history(self, tiny_dataset, graph, rng):
        encoder = ModalityEncoder(tiny_dataset, graph, "text", 16, 0.0, rng)
        encoder.eval()
        x_u, _, _ = encoder()
        degrees = graph.user_degree()
        active = degrees > 0
        assert np.abs(x_u.data[active]).sum() > 0


class TestKnowledgeEncoder:
    def test_cold_items_get_nonzero(self, tiny_dataset, rng):
        """Cold items stay connected through the KG — the knowledge-aware
        path must produce informative embeddings for them."""
        ckg = build_collaborative_kg(
            tiny_dataset.kg, tiny_dataset.split.train, tiny_dataset.num_users)
        u = Embedding(tiny_dataset.num_users, 16, rng)
        i = Embedding(tiny_dataset.num_items, 16, rng)
        encoder = KnowledgeEncoder(ckg, u, i, 16, 1, rng)
        x_users, x_items = encoder()
        cold = tiny_dataset.split.cold_items
        assert np.abs(x_items.data[cold]).sum() > 0
        assert x_users.shape == (tiny_dataset.num_users, 16)

    def test_node_matrix_layout(self, tiny_dataset, rng):
        ckg = build_collaborative_kg(
            tiny_dataset.kg, tiny_dataset.split.train, tiny_dataset.num_users)
        u = Embedding(tiny_dataset.num_users, 16, rng)
        i = Embedding(tiny_dataset.num_items, 16, rng)
        encoder = KnowledgeEncoder(ckg, u, i, 16, 1, rng)
        nodes = encoder.node_matrix()
        assert nodes.shape == (ckg.num_nodes, 16)
        np.testing.assert_allclose(
            nodes.data[:tiny_dataset.num_items], i.weight.data)
        np.testing.assert_allclose(
            nodes.data[ckg.num_entities:], u.weight.data)


class TestImportanceFusion:
    def test_equal_initial_betas(self):
        fusion = ImportanceFusion(FirzenConfig(), ("text", "image"))
        assert fusion.beta["text"] == pytest.approx(0.5)

    def test_momentum_update_direction(self):
        config = FirzenConfig(beta_momentum=0.5)
        fusion = ImportanceFusion(config, ("text", "image"))
        fusion.update_beta({"text": 2.0, "image": 0.0})
        assert fusion.beta["text"] > fusion.beta["image"]
        assert (fusion.beta["text"] + fusion.beta["image"]) \
            == pytest.approx(1.0, abs=1e-9)

    def test_high_momentum_resists_change(self):
        config = FirzenConfig(beta_momentum=0.9999)
        fusion = ImportanceFusion(config, ("text", "image"))
        fusion.update_beta({"text": 100.0, "image": 0.0})
        assert abs(fusion.beta["text"] - 0.5) < 0.001

    def test_fusion_weights_components(self, rng):
        from repro.autograd import Tensor
        config = FirzenConfig(lambda_k=0.5, lambda_m=2.0)
        fusion = ImportanceFusion(config, ("text",))
        behavior = (Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2))))
        knowledge = (Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2))))
        modal = {"text": (Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2))))}
        fused_u, fused_i = fusion(behavior, knowledge, modal)
        # 1 + 0.5 + 2.0 * 1.0 (beta_text = 1 for single modality)
        np.testing.assert_allclose(fused_u.data, 3.5)

    def test_fusion_handles_missing_components(self):
        from repro.autograd import Tensor
        fusion = ImportanceFusion(FirzenConfig(), ())
        fused_u, fused_i = fusion(
            (Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2)))), None, {})
        np.testing.assert_allclose(fused_u.data, 1.0)
