"""End-to-end integration tests across the full pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.data import build_dataset
from repro.data.world import WorldConfig
from repro.eval import evaluate_model, evaluate_normal_cold
from repro.train import TrainConfig, train_model


class TestHeadlineShape:
    """The paper's two headline claims on a small world."""

    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        config = TrainConfig(epochs=8, eval_every=4, batch_size=256,
                             learning_rate=0.05)
        results = {}
        for name in ("LightGCN", "Firzen"):
            model = create_model(name, small_dataset, embedding_dim=16,
                                 seed=0)
            train_model(model, small_dataset, config)
            results[name] = (model,
                             evaluate_model(model, small_dataset.split,
                                            k=10))
        return results

    def test_firzen_beats_cf_on_cold(self, trained):
        assert trained["Firzen"][1].cold.recall \
            > trained["LightGCN"][1].cold.recall

    def test_firzen_warm_competitive(self, trained):
        assert trained["Firzen"][1].warm.recall \
            >= 0.75 * trained["LightGCN"][1].warm.recall

    def test_firzen_best_harmonic_mean(self, trained):
        assert trained["Firzen"][1].hm.recall \
            > trained["LightGCN"][1].hm.recall

    def test_normal_cold_beats_strict_cold(self, trained, small_dataset):
        """Known links must help Firzen's cold ranking."""
        model = trained["Firzen"][0]
        from repro.eval import evaluate_scenario
        strict = evaluate_scenario(model, small_dataset.split,
                                   "cold_test_unknown", k=10)
        model.adapt_to_interactions(small_dataset.split.cold_test_known)
        normal = evaluate_normal_cold(model, small_dataset.split, k=10)
        assert normal.recall >= strict.recall * 0.9


class TestDegenerateWorlds:
    """Failure-injection: extreme configurations must not crash."""

    def test_single_cluster_world(self):
        config = WorldConfig(num_users=40, num_items=30, num_clusters=1,
                             vocab_size=60, cluster_vocab_size=10, seed=1)
        dataset = build_dataset("one-cluster", config)
        model = create_model("Firzen", dataset, embedding_dim=8, seed=0)
        result = train_model(model, dataset,
                             TrainConfig(epochs=1, eval_every=1,
                                         batch_size=64))
        assert np.isfinite(result.losses).all()

    def test_tiny_item_catalog(self):
        config = WorldConfig(num_users=30, num_items=12, num_clusters=2,
                             vocab_size=40, cluster_vocab_size=8, seed=2)
        dataset = build_dataset("mini", config)
        model = create_model("LightGCN", dataset, embedding_dim=8, seed=0)
        train_model(model, dataset, TrainConfig(epochs=1, eval_every=1,
                                                batch_size=32))
        bundle = evaluate_model(model, dataset.split, k=3)
        assert 0.0 <= bundle.cold.recall <= 1.0

    def test_noisy_features_world(self):
        """Near-uninformative content: content models must still run."""
        config = WorldConfig(num_users=40, num_items=30, text_noise=50.0,
                             image_noise=50.0, vocab_size=60,
                             cluster_vocab_size=10, seed=3)
        dataset = build_dataset("noisy", config)
        model = create_model("VBPR", dataset, embedding_dim=8, seed=0)
        result = train_model(model, dataset,
                             TrainConfig(epochs=1, eval_every=1,
                                         batch_size=64))
        assert np.isfinite(result.losses).all()

    def test_informative_features_help_cold(self):
        """Property of the world generator: decreasing content noise
        improves a content model's cold ranking."""
        def cold_recall(noise, seed=4):
            config = WorldConfig(num_users=100, num_items=80,
                                 text_noise=noise, image_noise=noise,
                                 vocab_size=80, cluster_vocab_size=10,
                                 seed=seed)
            dataset = build_dataset(f"noise-{noise}", config)
            model = create_model("VBPR", dataset, embedding_dim=16, seed=0)
            train_model(model, dataset,
                        TrainConfig(epochs=6, eval_every=3, batch_size=128,
                                    learning_rate=0.05))
            return evaluate_model(model, dataset.split, k=10).cold.recall

        assert cold_recall(0.2) > cold_recall(20.0)


class TestDeterminism:
    def test_full_pipeline_reproducible(self, tiny_dataset):
        scores = []
        for _ in range(2):
            model = create_model("Firzen", tiny_dataset, embedding_dim=8,
                                 seed=11)
            train_model(model, tiny_dataset,
                        TrainConfig(epochs=2, eval_every=2, batch_size=128,
                                    seed=11))
            scores.append(model.score_users(np.arange(4)).copy())
        np.testing.assert_allclose(scores[0], scores[1])
