"""clip_grad_norm: row-ordered norm accumulation, sparse/dense parity.

The norm is accumulated per row first, then over the full-length
row-sum vector — the one order both a dense array and a row-sparse
block can reproduce bit-for-bit (absent sparse rows contribute the same
exact ``+0.0`` a zero dense row does). Dense 2-D gradients stream
through bounded row chunks, never allocating a full-table ``grad ** 2``
temporary.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import optim
from repro.autograd.optim import clip_grad_norm
from repro.autograd.rowsparse import RowSparseGrad
from repro.autograd.tensor import Tensor


def make_param(shape, rng):
    return Tensor(rng.normal(size=shape), requires_grad=True)


def reference_norm(grads):
    """The row-ordered specification, written naively."""
    total = 0.0
    for g in grads:
        if g.ndim == 2:
            row_sums = np.empty(g.shape[0], dtype=g.dtype)
            for r in range(g.shape[0]):
                row_sums[r] = (g[r] * g[r]).sum()
            total += float(np.sum(row_sums))
        else:
            total += float((g ** 2).sum())
    return float(np.sqrt(total))


def test_sparse_and_dense_norms_bit_identical(rng):
    shape = (60, 7)
    rows = np.unique(rng.integers(0, shape[0], size=25)).astype(np.int64)
    values = rng.normal(size=(len(rows), shape[1]))
    sparse = RowSparseGrad(rows, values.copy(), shape)

    p_sparse = make_param(shape, np.random.default_rng(1))
    p_dense = make_param(shape, np.random.default_rng(1))
    p_sparse.grad = sparse
    p_dense.grad = sparse.to_dense()

    norm_sparse = clip_grad_norm([p_sparse], max_norm=np.inf)
    norm_dense = clip_grad_norm([p_dense], max_norm=np.inf)
    assert norm_sparse == norm_dense  # bitwise, not approximately


def test_matches_row_ordered_reference(rng):
    p2d = make_param((33, 5), rng)
    p1d = make_param((9,), rng)
    p2d.grad = rng.normal(size=(33, 5))
    p1d.grad = rng.normal(size=(9,))
    got = clip_grad_norm([p2d, p1d], max_norm=np.inf)
    assert got == reference_norm([p2d.grad, p1d.grad])


def test_chunked_accumulation_equals_single_block(rng):
    # More rows than the chunk size: the streamed accumulation must be
    # bit-identical to one-shot row sums (it is the same per-row
    # reduction, just bounded temporaries).
    num_rows = optim._CLIP_CHUNK * 2 + 37
    grad = rng.normal(size=(num_rows, 3))
    p = make_param((num_rows, 3), np.random.default_rng(2))
    p.grad = grad.copy()
    got = clip_grad_norm([p], max_norm=np.inf)
    row_sums = (grad * grad).sum(axis=1)
    assert got == float(np.sqrt(float(np.sum(row_sums))))


def test_clipping_scales_sparse_and_dense_identically(rng):
    shape = (40, 4)
    rows = np.unique(rng.integers(0, shape[0], size=20)).astype(np.int64)
    values = rng.normal(size=(len(rows), shape[1])) * 100.0
    sparse = RowSparseGrad(rows, values.copy(), shape)

    p_sparse = make_param(shape, np.random.default_rng(1))
    p_dense = make_param(shape, np.random.default_rng(1))
    p_sparse.grad = sparse
    p_dense.grad = sparse.to_dense()

    pre_sparse = clip_grad_norm([p_sparse], max_norm=1.0)
    pre_dense = clip_grad_norm([p_dense], max_norm=1.0)
    assert pre_sparse == pre_dense
    assert pre_sparse > 1.0
    np.testing.assert_array_equal(p_sparse.grad.to_dense(), p_dense.grad)
    np.testing.assert_allclose(
        np.sqrt((p_dense.grad ** 2).sum()), 1.0, atol=1e-9)


def test_small_gradients_left_untouched(rng):
    p = make_param((10, 3), rng)
    p.grad = np.full((10, 3), 0.01)
    clip_grad_norm([p], max_norm=1.0)
    np.testing.assert_array_equal(p.grad, np.full((10, 3), 0.01))
