"""End-to-end: sparse-gradient training is bit-identical to dense.

The acceptance bar for the row-sparse pipeline — trained parameters,
loss curves, and optimizer moments must match the dense schedule
(``REPRO_SPARSE_GRAD=0``) bit for bit, not approximately. Covers the
core models (MSHGL and SAHGL stages via Firzen), LightGCN, and a KG
baseline with an alternating TransR optimizer (KGAT), plus a
moment-level check on a pure embedding-table model (BPR).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.optim import Adam, clip_grad_norm
from repro.baselines import create_model
from repro.train import TrainConfig, train_model
from repro.train.sampler import BPRSampler

# Batch 16 on the tiny world keeps gathers well below the table sizes,
# so the row-sparse emission heuristic (gathered*2 <= rows) genuinely
# engages — test_sparse_path_engages asserts it is not vacuous.
QUICK = TrainConfig(epochs=2, eval_every=3, batch_size=16,
                    learning_rate=0.05)


def train_state(name, dataset, monkeypatch, sparse, **kwargs):
    monkeypatch.setenv("REPRO_SPARSE_GRAD", "1" if sparse else "0")
    model = create_model(name, dataset, embedding_dim=16, seed=0, **kwargs)
    result = train_model(model, dataset, QUICK)
    return model.state_dict(), result.losses


# MSHGL and SAHGL are Firzen's two stages: exercising Firzen with MSHGL
# on/off covers both the homogeneous-graph stage and the pure SAHGL
# path, on top of LightGCN and the KG baseline.
CASES = [
    ("BPR", {}),
    ("LightGCN", {}),
    ("KGAT", {"kg_batches": 2, "kg_batch_size": 32}),
    ("Firzen", {}),                      # SAHGL + MSHGL
    ("Firzen", {"use_mshgl": False}),    # SAHGL only
]


@pytest.mark.parametrize("name,kwargs", CASES,
                         ids=["BPR", "LightGCN", "KGAT", "Firzen-MSHGL",
                              "Firzen-SAHGL"])
def test_trained_parameters_bit_identical(tiny_dataset, monkeypatch,
                                          name, kwargs):
    if name == "Firzen":
        from repro.core.config import FirzenConfig
        config = FirzenConfig(embedding_dim=16, kg_batch_size=32, **kwargs)
        kwargs = {"config": config}
    sparse_state, sparse_losses = train_state(name, tiny_dataset,
                                              monkeypatch, True, **kwargs)
    dense_state, dense_losses = train_state(name, tiny_dataset,
                                            monkeypatch, False, **kwargs)
    assert sparse_losses == dense_losses  # bitwise loss curve
    assert sparse_state.keys() == dense_state.keys()
    for key in dense_state:
        np.testing.assert_array_equal(sparse_state[key], dense_state[key],
                                      err_msg=key)


def test_sparse_path_engages(tiny_dataset, monkeypatch):
    """Guard against vacuous parity: with QUICK's batch size the gather
    backward must genuinely emit row-sparse gradients during training
    (otherwise every parity case above just compares dense to dense)."""
    from repro.autograd import rowsparse

    emitted = {"count": 0}
    original = rowsparse.RowSparseGrad.from_gather.__func__

    def counting(cls, *args, **kwargs):
        emitted["count"] += 1
        return original(cls, *args, **kwargs)

    monkeypatch.setattr(rowsparse.RowSparseGrad, "from_gather",
                        classmethod(counting))
    monkeypatch.setenv("REPRO_SPARSE_GRAD", "1")
    model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
    train_model(model, tiny_dataset, QUICK)
    assert emitted["count"] > 0


def test_adam_moments_bit_identical(tiny_dataset, monkeypatch):
    """White-box: the optimizer's m/v buffers — not just the parameters —
    must match the dense schedule after a full training pass."""
    moments = {}
    for sparse in (True, False):
        monkeypatch.setenv("REPRO_SPARSE_GRAD", "1" if sparse else "0")
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        rng = np.random.default_rng(0)
        sampler = BPRSampler(tiny_dataset.split.train,
                             tiny_dataset.num_items,
                             tiny_dataset.split.warm_items, rng)
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(2):
            for users, pos, neg in sampler.epoch_batches(16):
                optimizer.zero_grad()
                model.loss(users, pos, neg).backward()
                clip_grad_norm(optimizer.params, 10.0)
                optimizer.step()
            optimizer.flush()
        optimizer.release()
        moments[sparse] = ([m.copy() for m in optimizer._m],
                           [v.copy() for v in optimizer._v])
    for sparse_m, dense_m in zip(moments[True][0], moments[False][0],
                                 strict=True):
        np.testing.assert_array_equal(sparse_m, dense_m)
    for sparse_v, dense_v in zip(moments[True][1], moments[False][1],
                                 strict=True):
        np.testing.assert_array_equal(sparse_v, dense_v)


def test_mid_training_state_dict_is_exact(tiny_dataset, monkeypatch):
    """Snapshots taken while rows are still deferred (early stopping's
    best-state capture) must equal the dense schedule's snapshot."""
    snaps = {}
    for sparse in (True, False):
        monkeypatch.setenv("REPRO_SPARSE_GRAD", "1" if sparse else "0")
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        rng = np.random.default_rng(0)
        sampler = BPRSampler(tiny_dataset.split.train,
                             tiny_dataset.num_items,
                             tiny_dataset.split.warm_items, rng)
        optimizer = Adam(model.parameters(), lr=0.05)
        taken = None
        for users, pos, neg in sampler.epoch_batches(16):
            optimizer.zero_grad()
            model.loss(users, pos, neg).backward()
            optimizer.step()
            if taken is None:
                taken = model.state_dict()  # mid-epoch, rows pending
        snaps[sparse] = taken
    for key in snaps[False]:
        np.testing.assert_array_equal(snaps[True][key], snaps[False][key],
                                      err_msg=key)
