"""Lazy Adam: deferred row updates replay bit-identically to dense Adam.

The contract under test: with row-sparse gradients, ``Adam`` updates
only the touched rows per step and replays every skipped per-row update
(the moment-decay drift dense Adam applies to zero-gradient rows)
exactly — on the next touch, on any full read of the parameter, or on
``flush()``. Every observation point must be bit-identical to running
the dense schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.optim import Adam
from repro.autograd.rowsparse import RowSparseGrad
from repro.autograd.tensor import Tensor, _LazyParam

SHAPE = (30, 6)


def make_param(rng, requires_grad=True):
    return Tensor(rng.normal(size=SHAPE), requires_grad=requires_grad)


def sparse_grad(rows, rng):
    rows = np.asarray(rows, dtype=np.int64)
    return RowSparseGrad(rows, rng.normal(size=(len(rows), SHAPE[1])),
                         SHAPE)


def run_pair(schedule, lr=0.05, reads=()):
    """Run the same per-step row schedule through lazy and dense Adam.

    ``schedule`` is a list of row-index lists (the rows with nonzero
    gradient that step; ``None`` means the parameter has no gradient at
    all that step). ``reads`` maps step index -> callback(lazy_param),
    exercising mid-stream observation points.
    """
    rng_init = np.random.default_rng(7)
    init = rng_init.normal(size=SHAPE)

    lazy_p = Tensor(init.copy(), requires_grad=True)
    dense_p = Tensor(init.copy(), requires_grad=True)
    lazy_opt = Adam([lazy_p], lr=lr, sparse=True)
    dense_opt = Adam([dense_p], lr=lr, sparse=False)
    assert isinstance(lazy_p, _LazyParam)

    reads = dict(reads)
    for step, rows in enumerate(schedule):
        grad_rng = np.random.default_rng(100 + step)
        if rows is None:
            lazy_p.grad = dense_p.grad = None
        else:
            g = sparse_grad(rows, grad_rng)
            lazy_p.grad = g
            dense_p.grad = g.to_dense()
        lazy_opt.step()
        dense_opt.step()
        if step in reads:
            reads[step](lazy_p)
    return lazy_p, dense_p, lazy_opt, dense_opt


def assert_bit_identical(lazy_p, dense_p, lazy_opt, dense_opt):
    lazy_opt.flush()
    np.testing.assert_array_equal(lazy_p.data, dense_p.data)
    np.testing.assert_array_equal(lazy_opt._m[0], dense_opt._m[0])
    np.testing.assert_array_equal(lazy_opt._v[0], dense_opt._v[0])


class TestStalenessCatchUp:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_row_untouched_for_k_steps_then_touched(self, k):
        # Row 2 is touched at step 0, idles for k steps while rows 5/6
        # keep training, then is touched again at step k+1.
        schedule = [[2, 5]] + [[5, 6]] * k + [[2, 6]]
        out = run_pair(schedule)
        assert_bit_identical(*out)

    def test_rows_with_mixed_staleness_in_one_catch_up(self):
        # Each row has a different last-touched step; the final batch
        # gathers them all, replaying a different number of idle steps
        # per row in one vectorized catch-up.
        schedule = [[0], [1], [2], [3], [4], [0, 1, 2, 3, 4]]
        out = run_pair(schedule)
        assert_bit_identical(*out)

    def test_steps_without_any_gradient_are_skipped(self):
        # Dense Adam `continue`s past a param with grad None — no moment
        # decay happens for those global steps. The replay must not
        # invent them (bias corrections still advance globally).
        schedule = [[1, 2], None, None, [2, 3], None, [1]]
        out = run_pair(schedule)
        assert out[2]._step_count == out[3]._step_count == len(schedule)
        assert_bit_identical(*out)

    def test_never_touched_rows_bitwise_untouched(self):
        lazy_p, dense_p, lazy_opt, dense_opt = run_pair([[3, 4]] * 5)
        lazy_opt.flush()
        untouched = [r for r in range(SHAPE[0]) if r not in (3, 4)]
        # Identical to the dense schedule *and* to the initial values:
        # the dense no-op update on zero-moment rows is exact.
        np.testing.assert_array_equal(lazy_p.data[untouched],
                                      dense_p.data[untouched])
        assert_bit_identical(lazy_p, dense_p, lazy_opt, dense_opt)


class TestObservationPoints:
    def test_full_data_read_syncs_pending_rows(self):
        captured = {}

        def read(param):
            # .data on a lazy param must replay all deferred updates
            # (state_dict, serving exports, propagation reads).
            captured["value"] = param.data.copy()

        lazy_p, dense_p, *_ = run_pair(
            [[0, 1], [1, 2], [1]], reads={2: read})
        np.testing.assert_array_equal(captured["value"], dense_p.data)

    def test_gather_syncs_only_requested_rows(self):
        state = {}

        def read(param):
            gathered = param.take_rows(np.array([0, 3]))
            state["gathered"] = gathered.data.copy()
            # Row 1 was not gathered: it may legitimately stay stale in
            # the raw buffer (white-box check that deferral is real).
            state["raw"] = param._rawdata().copy()

        lazy_p, dense_p, lazy_opt, _ = run_pair(
            [[0, 1], [2, 3], [3]], reads={2: read})
        np.testing.assert_array_equal(state["gathered"],
                                      dense_p.data[[0, 3]])
        lazy_opt.flush()
        np.testing.assert_array_equal(lazy_p.data, dense_p.data)

    def test_deferral_is_real_before_sync(self):
        rng = np.random.default_rng(0)
        init = rng.normal(size=SHAPE)
        p = Tensor(init.copy(), requires_grad=True)
        opt = Adam([p], lr=0.1, sparse=True)
        for _ in range(3):
            p.grad = sparse_grad([0], np.random.default_rng(1))
            opt.step()
        # Row 5 never touched: raw buffer still holds its initial value.
        np.testing.assert_array_equal(p._rawdata()[5], init[5])
        # Row 0 touched every step: raw buffer is current.
        assert not np.array_equal(p._rawdata()[0], init[0])

    def test_lr_change_flushes_pending(self):
        lazy_p, dense_p, lazy_opt, dense_opt = run_pair([[0], [0, 1]])
        lazy_opt.lr = 0.5
        dense_opt.lr = 0.5
        g = sparse_grad([0], np.random.default_rng(9))
        lazy_p.grad = g
        dense_p.grad = g.to_dense()
        lazy_opt.step()
        dense_opt.step()
        assert_bit_identical(lazy_p, dense_p, lazy_opt, dense_opt)


class TestLifecycle:
    def test_release_restores_plain_tensor(self):
        lazy_p, dense_p, lazy_opt, dense_opt = run_pair([[0, 1], [2]])
        lazy_opt.release()
        assert type(lazy_p) is Tensor
        assert lazy_p._lazy is None
        np.testing.assert_array_equal(lazy_p.data, dense_p.data)
        # Post-release steps fall back to dense updates with the same
        # moment buffers.
        g = sparse_grad([1], np.random.default_rng(11))
        lazy_p.grad = g
        dense_p.grad = g.to_dense()
        lazy_opt.step()
        dense_opt.step()
        np.testing.assert_array_equal(lazy_p.data, dense_p.data)

    def test_weight_decay_forces_dense_schedule(self):
        p = Tensor(np.random.default_rng(0).normal(size=SHAPE),
                   requires_grad=True)
        opt = Adam([p], lr=0.05, weight_decay=1e-4)
        assert type(p) is Tensor  # no lazy hook installed
        ref = Tensor(p.data.copy(), requires_grad=True)
        ref_opt = Adam([ref], lr=0.05, weight_decay=1e-4, sparse=False)
        g = sparse_grad([0, 4], np.random.default_rng(3))
        p.grad = g
        ref.grad = g.to_dense()
        opt.step()
        ref_opt.step()
        np.testing.assert_array_equal(p.data, ref.data)

    def test_two_optimizers_share_one_parameter(self):
        # Firzen shares embedding tables between the trainer's Adam and
        # the alternating KG optimizer; deferred states must coexist.
        rng = np.random.default_rng(0)
        init = rng.normal(size=SHAPE)
        p = Tensor(init.copy(), requires_grad=True)
        ref = Tensor(init.copy(), requires_grad=True)
        opt_a = Adam([p], lr=0.05, sparse=True)
        opt_b = Adam([p], lr=0.01, sparse=True)
        ref_a = Adam([ref], lr=0.05, sparse=False)
        ref_b = Adam([ref], lr=0.01, sparse=False)
        assert len(p._lazy) == 2
        for step in range(4):
            g = sparse_grad([step % 3, 5], np.random.default_rng(step))
            p.grad = g
            ref.grad = g.to_dense()
            (opt_a if step % 2 == 0 else opt_b).step()
            (ref_a if step % 2 == 0 else ref_b).step()
        opt_a.flush()
        opt_b.flush()
        np.testing.assert_array_equal(p.data, ref.data)

    def test_interleaved_deferrals_on_shared_row(self):
        # Regression: row 0 gets moments under A, then both optimizers
        # keep stepping *other* rows (each would defer idle updates on
        # row 0) with no reads in between. Sibling flush-before-write
        # must keep the per-row update chronology identical to the
        # dense interleaving.
        init = np.random.default_rng(7).normal(size=SHAPE)
        p = Tensor(init.copy(), requires_grad=True)
        ref = Tensor(init.copy(), requires_grad=True)
        opt_a = Adam([p], lr=0.05, sparse=True)
        opt_b = Adam([p], lr=0.01, sparse=True)
        ref_a = Adam([ref], lr=0.05, sparse=False)
        ref_b = Adam([ref], lr=0.01, sparse=False)
        schedule = ([("a", [0, 1])]
                    + [("a", [2]), ("b", [3])] * 10
                    + [("b", [0])])
        for seed, (who, rows) in enumerate(schedule):
            g = sparse_grad(rows, np.random.default_rng(seed))
            p.grad = g
            ref.grad = g.to_dense()
            (opt_a if who == "a" else opt_b).step()
            (ref_a if who == "a" else ref_b).step()
        opt_a.flush()
        opt_b.flush()
        np.testing.assert_array_equal(p.data, ref.data)
