"""RowSparseGrad semantics: bit-parity with the dense scatter kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.rowsparse import RowSparseGrad, densify, grad_sum


def dense_bincount(indices, g, shape, dtype):
    """The historical take_rows dense backward."""
    rows, cols = shape
    flat = (indices[:, None] * cols + np.arange(cols)[None, :]).ravel()
    grad = np.bincount(flat, weights=g.ravel(), minlength=rows * cols)
    return grad.reshape(rows, cols).astype(dtype, copy=False)


def dense_add_at(indices, g, shape, dtype):
    """The historical __getitem__ dense backward."""
    grad = np.zeros(shape, dtype=dtype)
    np.add.at(grad, indices, g)
    return grad


@pytest.fixture()
def gather(rng):
    indices = rng.integers(0, 50, size=120).astype(np.int64)
    g = rng.normal(size=(120, 8))
    return indices, g, (50, 8)


class TestFromGather:
    def test_bincount_flavor_matches_dense(self, gather):
        indices, g, shape = gather
        sparse = RowSparseGrad.from_gather(indices, g, shape, np.float64,
                                           via_bincount=True)
        np.testing.assert_array_equal(
            sparse.to_dense(), dense_bincount(indices, g, shape, np.float64))

    def test_add_at_flavor_matches_dense(self, gather):
        indices, g, shape = gather
        sparse = RowSparseGrad.from_gather(indices, g, shape, np.float64,
                                           via_bincount=False)
        np.testing.assert_array_equal(
            sparse.to_dense(), dense_add_at(indices, g, shape, np.float64))

    def test_add_at_flavor_float32(self, gather):
        indices, g, shape = gather
        g32 = g.astype(np.float32)
        sparse = RowSparseGrad.from_gather(indices, g32, shape, np.float32,
                                           via_bincount=False)
        assert sparse.values.dtype == np.float32
        np.testing.assert_array_equal(
            sparse.to_dense(), dense_add_at(indices, g32, shape, np.float32))

    def test_rows_unique_sorted(self, gather):
        indices, g, shape = gather
        sparse = RowSparseGrad.from_gather(indices, g, shape, np.float64)
        assert np.array_equal(sparse.rows, np.unique(indices))
        assert sparse.values.shape == (len(sparse.rows), shape[1])


class TestAccumulation:
    def _two(self, rng, shape=(40, 6)):
        idx_a = rng.integers(0, shape[0], size=30).astype(np.int64)
        idx_b = rng.integers(0, shape[0], size=25).astype(np.int64)
        a = RowSparseGrad.from_gather(idx_a, rng.normal(size=(30, shape[1])),
                                      shape, np.float64)
        b = RowSparseGrad.from_gather(idx_b, rng.normal(size=(25, shape[1])),
                                      shape, np.float64)
        return a, b

    def test_sparse_plus_sparse(self, rng):
        a, b = self._two(rng)
        merged = a.add(b)
        np.testing.assert_array_equal(merged.to_dense(),
                                      a.to_dense() + b.to_dense())
        assert np.array_equal(merged.rows, np.unique(merged.rows))

    def test_sparse_plus_dense(self, rng):
        a, b = self._two(rng)
        dense = b.to_dense()
        np.testing.assert_array_equal(a.add_dense(dense),
                                      a.to_dense() + dense)

    def test_dense_plus_sparse_in_place(self, rng):
        a, b = self._two(rng)
        target = a.to_dense()
        b.add_to_dense(target)
        np.testing.assert_array_equal(target, a.to_dense() + b.to_dense())

    def test_grad_sum_dispatch(self, rng):
        a, b = self._two(rng)
        expected = a.to_dense() + b.to_dense()
        np.testing.assert_array_equal(densify(grad_sum(a, b)), expected)
        np.testing.assert_array_equal(grad_sum(a, b.to_dense()), expected)
        np.testing.assert_array_equal(grad_sum(a.to_dense(), b), expected)
        np.testing.assert_array_equal(grad_sum(a.to_dense(), b.to_dense()),
                                      expected)

    def test_grad_sum_dense_plus_sparse_does_not_mutate(self, rng):
        a, b = self._two(rng)
        first = a.to_dense()
        keep = first.copy()
        grad_sum(first, b)
        np.testing.assert_array_equal(first, keep)


def test_scale_in_place(rng):
    sparse = RowSparseGrad.from_gather(
        np.array([1, 3, 1], dtype=np.int64), rng.normal(size=(3, 4)),
        (10, 4), np.float64)
    expected = sparse.to_dense() * 0.25
    sparse.scale_(0.25)
    np.testing.assert_array_equal(sparse.to_dense(), expected)


def test_empty_gather(rng):
    sparse = RowSparseGrad.from_gather(
        np.empty(0, dtype=np.int64), np.empty((0, 4)), (10, 4), np.float64)
    assert sparse.rows.size == 0
    np.testing.assert_array_equal(sparse.to_dense(), np.zeros((10, 4)))
