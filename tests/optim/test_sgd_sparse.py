"""SGD gets the same row-sparse/lazy treatment as Adam.

Without momentum a zero-gradient row is an exact no-op, so sparse steps
need no replay; with momentum the velocity decay (``vel *= mu``) keeps
moving parameters and must be replayed per missed step. Either way the
sparse and dense schedules must be bit-identical — the two optimizers
may not silently diverge in semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.optim import SGD
from repro.autograd.rowsparse import RowSparseGrad
from repro.autograd.tensor import Tensor, _LazyParam

SHAPE = (20, 5)


def sparse_grad(rows, seed):
    rows = np.asarray(rows, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return RowSparseGrad(rows, rng.normal(size=(len(rows), SHAPE[1])),
                         SHAPE)


def run_pair(schedule, **kwargs):
    init = np.random.default_rng(7).normal(size=SHAPE)
    lazy_p = Tensor(init.copy(), requires_grad=True)
    dense_p = Tensor(init.copy(), requires_grad=True)
    lazy_opt = SGD([lazy_p], sparse=True, **kwargs)
    dense_opt = SGD([dense_p], sparse=False, **kwargs)
    for step, rows in enumerate(schedule):
        if rows is None:
            lazy_p.grad = dense_p.grad = None
        else:
            g = sparse_grad(rows, 100 + step)
            lazy_p.grad = g
            dense_p.grad = g.to_dense()
        lazy_opt.step()
        dense_opt.step()
    lazy_opt.flush()
    return lazy_p, dense_p, lazy_opt, dense_opt


SCHEDULE = [[0, 3], [3, 4], None, [4], [0, 1, 3, 4], [2]]


def test_plain_sgd_sparse_matches_dense():
    lazy_p, dense_p, *_ = run_pair(SCHEDULE, lr=0.1)
    np.testing.assert_array_equal(lazy_p.data, dense_p.data)


@pytest.mark.parametrize("k", [1, 4])
def test_momentum_staleness_replay(k):
    # Row 0 idles for k steps while its velocity keeps decaying in the
    # dense schedule; the lazy replay must reproduce that drift exactly.
    schedule = [[0, 1]] + [[1, 2]] * k + [[0]]
    lazy_p, dense_p, lazy_opt, dense_opt = run_pair(schedule, lr=0.05,
                                                    momentum=0.9)
    np.testing.assert_array_equal(lazy_p.data, dense_p.data)
    np.testing.assert_array_equal(lazy_opt._velocity[0],
                                  dense_opt._velocity[0])


def test_momentum_full_schedule():
    lazy_p, dense_p, lazy_opt, dense_opt = run_pair(SCHEDULE, lr=0.05,
                                                    momentum=0.9)
    np.testing.assert_array_equal(lazy_p.data, dense_p.data)
    np.testing.assert_array_equal(lazy_opt._velocity[0],
                                  dense_opt._velocity[0])


def test_weight_decay_forces_dense_schedule():
    p = Tensor(np.random.default_rng(0).normal(size=SHAPE),
               requires_grad=True)
    opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=1e-3)
    assert type(p) is Tensor  # lazy hook refused: exactness unproven
    ref = Tensor(p.data.copy(), requires_grad=True)
    ref_opt = SGD([ref], lr=0.1, momentum=0.9, weight_decay=1e-3,
                  sparse=False)
    g = sparse_grad([1, 2], 5)
    p.grad = g
    ref.grad = g.to_dense()
    opt.step()
    ref_opt.step()
    np.testing.assert_array_equal(p.data, ref.data)


def test_lazy_hook_installed_only_when_eligible():
    p = Tensor(np.random.default_rng(0).normal(size=SHAPE),
               requires_grad=True)
    bias = Tensor(np.zeros(5), requires_grad=True)
    SGD([p, bias], lr=0.1, sparse=True)
    assert isinstance(p, _LazyParam)
    assert type(bias) is Tensor  # 1-D params stay eager
