"""Integration tests for the shared training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.train import TrainConfig, train_model


def quick_config(**kw):
    defaults = dict(epochs=4, eval_every=2, batch_size=128,
                    learning_rate=0.05, patience=10)
    defaults.update(kw)
    return TrainConfig(**defaults)


class TestTraining:
    def test_loss_decreases(self, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, quick_config(epochs=8))
        assert result.losses[-1] < result.losses[0]

    def test_records_history(self, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, quick_config())
        assert result.epochs_run == 4
        assert len(result.losses) == 4
        assert len(result.val_history) == 2
        assert result.train_seconds > 0

    def test_best_state_restored(self, tiny_dataset):
        """After training, the model carries its best-validation weights."""
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, quick_config())
        assert result.best_epoch >= 0

    def test_early_stop_caps_epochs(self, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        config = quick_config(epochs=40, eval_every=1, patience=2,
                              learning_rate=0.0)  # frozen -> no improvement
        result = train_model(model, tiny_dataset, config)
        assert result.epochs_run < 40

    def test_deterministic_given_seed(self, tiny_dataset):
        losses = []
        for _ in range(2):
            model = create_model("BPR", tiny_dataset, embedding_dim=16,
                                 seed=7)
            result = train_model(model, tiny_dataset, quick_config(seed=7))
            losses.append(result.losses)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_monitor_variants(self, tiny_dataset):
        for monitor in ("hm_recall", "warm_recall", "cold_recall"):
            model = create_model("BPR", tiny_dataset, embedding_dim=8,
                                 seed=0)
            result = train_model(
                model, tiny_dataset,
                quick_config(epochs=2, eval_every=1, monitor=monitor))
            assert result.epochs_run >= 1


class TestConfigValidation:
    """Unknown knob values fail at construction — they used to fall
    through silently to default behavior."""

    def test_unknown_monitor_rejected(self):
        with pytest.raises(ValueError, match=r"hm_recall, warm_recall, "
                                             r"cold_recall"):
            TrainConfig(monitor="hm_reca11")

    def test_unknown_lr_schedule_rejected(self):
        with pytest.raises(ValueError, match=r"constant, step, cosine, "
                                             r"warmup-cosine"):
            TrainConfig(lr_schedule="linear")

    def test_valid_values_accepted(self):
        for monitor in ("hm_recall", "warm_recall", "cold_recall"):
            TrainConfig(monitor=monitor)
        for schedule in ("constant", "step", "cosine", "warmup-cosine"):
            TrainConfig(lr_schedule=schedule)
