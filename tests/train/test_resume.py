"""Checkpoint save -> kill -> resume bit-exactness (ISSUE 5 satellite).

The contract: a training run killed at any epoch boundary and resumed
from its snapshot produces *bit-identical* state to an uninterrupted
run — trained parameters, Adam moments (trainer's and the models'
internal alternating optimizers), lazy-row deferred bookkeeping, and
the position of every RNG stream. Verified for KGAT and Firzen, the
two heterogeneous models with internal optimizers and multiple RNG
streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.train import TrainConfig, train_model
from repro.train.snapshot import (collect_optimizers, collect_rng_streams,
                                  load_training_snapshot)

MODELS = ("KGAT", "Firzen")


class _Killed(Exception):
    pass


def _config(epochs: int = 5) -> TrainConfig:
    return TrainConfig(epochs=epochs, eval_every=2, batch_size=64,
                       learning_rate=0.05, patience=10)


def _fresh(name, dataset):
    return create_model(name, dataset, embedding_dim=16, seed=0)


def _assert_state_equal(left: dict, right: dict, context: str) -> None:
    assert set(left) == set(right), context
    for key in left:
        assert np.array_equal(left[key], right[key]), (context, key)


@pytest.mark.parametrize("model_name", MODELS)
def test_kill_resume_bit_exact(model_name, tiny_dataset, tmp_path):
    config = _config()

    # Reference: uninterrupted run without any snapshotting.
    reference = _fresh(model_name, tiny_dataset)
    ref_result = train_model(reference, tiny_dataset, config)

    # Uninterrupted run WITH per-epoch snapshots: snapshotting (which
    # flushes deferred lazy-row updates early) must not perturb the
    # trajectory.
    snapshotted = _fresh(model_name, tiny_dataset)
    snap_result = train_model(snapshotted, tiny_dataset, config,
                              snapshot_path=tmp_path / "full.npz")
    _assert_state_equal(reference.state_dict(), snapshotted.state_dict(),
                        "snapshotting changed the trajectory")
    assert ref_result.losses == snap_result.losses

    # Killed after epoch 1, resumed from the snapshot.
    killed = _fresh(model_name, tiny_dataset)

    def kill_hook(epoch, model):
        if epoch == 1:
            raise _Killed()

    with pytest.raises(_Killed):
        train_model(killed, tiny_dataset, config,
                    snapshot_path=tmp_path / "killed.npz",
                    epoch_hook=kill_hook)

    resumed = _fresh(model_name, tiny_dataset)
    res_result = train_model(resumed, tiny_dataset, config,
                             snapshot_path=tmp_path / "killed.npz")

    # 1. Trained parameters (and model buffers like Firzen's betas).
    _assert_state_equal(reference.state_dict(), resumed.state_dict(),
                        "resumed parameters diverged")
    # 2. Loss curve and validation history.
    assert res_result.losses == ref_result.losses
    assert res_result.val_history == ref_result.val_history
    assert res_result.best_epoch == ref_result.best_epoch
    assert res_result.epochs_run == ref_result.epochs_run

    # 3. Adam moments, lazy-row bookkeeping (flushed state), RNG
    #    positions: the final snapshots of the two trajectories must be
    #    bit-identical array-for-array and stream-for-stream.
    uninterrupted = load_training_snapshot(tmp_path / "full.npz")
    killed_resumed = load_training_snapshot(tmp_path / "killed.npz")
    assert uninterrupted.header["epoch"] == killed_resumed.header["epoch"]
    assert uninterrupted.header["rngs"] == killed_resumed.header["rngs"]
    assert uninterrupted.header["sampler_rng"] == \
        killed_resumed.header["sampler_rng"]
    assert uninterrupted.header["optimizers"] == \
        killed_resumed.header["optimizers"]
    assert uninterrupted.header["training_state"] == \
        killed_resumed.header["training_state"]
    assert uninterrupted.header["stopper"] == \
        killed_resumed.header["stopper"]
    _assert_state_equal(uninterrupted.arrays, killed_resumed.arrays,
                        "snapshot arrays diverged")

    # 4. Post-training evaluation is identical too.
    from repro.eval import evaluate_model
    ref_eval = evaluate_model(reference, tiny_dataset.split)
    res_eval = evaluate_model(resumed, tiny_dataset.split)
    assert ref_eval.cold == res_eval.cold
    assert ref_eval.warm == res_eval.warm


@pytest.mark.parametrize("model_name", MODELS)
def test_kill_at_every_epoch_boundary(model_name, tiny_dataset, tmp_path):
    """Killing after *any* completed epoch resumes to the same bits."""
    config = _config(epochs=4)
    reference = _fresh(model_name, tiny_dataset)
    train_model(reference, tiny_dataset, config)
    expected = reference.state_dict()

    for kill_epoch in range(3):
        snapshot = tmp_path / f"kill{kill_epoch}.npz"

        def kill_hook(epoch, model, _stop=kill_epoch):
            if epoch == _stop:
                raise _Killed()

        victim = _fresh(model_name, tiny_dataset)
        with pytest.raises(_Killed):
            train_model(victim, tiny_dataset, config,
                        snapshot_path=snapshot, epoch_hook=kill_hook)
        resumed = _fresh(model_name, tiny_dataset)
        train_model(resumed, tiny_dataset, config, snapshot_path=snapshot)
        _assert_state_equal(expected, resumed.state_dict(),
                            f"killed after epoch {kill_epoch}")


def test_snapshot_captures_every_stream_and_optimizer(tiny_dataset):
    """The generic object-graph walk finds Firzen's internal optimizers
    and all its RNG streams (regression guard: a new stream that the
    snapshot misses would silently break resume bit-exactness)."""
    model = _fresh("Firzen", tiny_dataset)
    optimizers = collect_optimizers(model)
    assert "._kg_optimizer" in optimizers
    assert "._disc_optimizer" in optimizers
    streams = collect_rng_streams(model)
    for expected in ("._kg_rng", "._disc_rng", ".rng"):
        assert expected in streams, sorted(streams)
    # dropout + gradient-penalty streams live deeper in the graph
    assert any("_drop_rng" in path for path in streams), sorted(streams)
    assert any("_fd_rng" in path for path in streams), sorted(streams)


def test_training_state_array_values_roundtrip(tiny_dataset, tmp_path):
    """Models may put ndarrays into training_state() (the dynamic-graph
    ablation carries its graph-rebuild features this way); they must
    survive the snapshot bit-for-bit and reach load_training_state on
    resume."""
    from repro.baselines.bpr import BPRModel

    class ArrayStateModel(BPRModel):
        _blob = None
        restored = None

        def on_epoch_end(self, epoch):
            super().on_epoch_end(epoch)
            self._blob = np.full((2, 3), float(epoch))

        def training_state(self):
            state = super().training_state()
            if self._blob is not None:
                state["blob"] = self._blob
            return state

        def load_training_state(self, state):
            super().load_training_state(
                {k: v for k, v in state.items() if k != "blob"})
            if "blob" in state:
                self.restored = state["blob"]
                self._blob = state["blob"]

    config = _config(epochs=3)

    def fresh():
        return ArrayStateModel(tiny_dataset, 16, np.random.default_rng(0))

    reference = fresh()
    train_model(reference, tiny_dataset, config)

    victim = fresh()

    def kill_hook(epoch, model):
        if epoch == 1:
            raise _Killed()

    with pytest.raises(_Killed):
        train_model(victim, tiny_dataset, config,
                    snapshot_path=tmp_path / "a.npz", epoch_hook=kill_hook)
    resumed = fresh()
    train_model(resumed, tiny_dataset, config,
                snapshot_path=tmp_path / "a.npz")
    assert isinstance(resumed.restored, np.ndarray)
    assert np.array_equal(resumed.restored, np.full((2, 3), 1.0))
    assert np.array_equal(resumed._blob, reference._blob)
    _assert_state_equal(reference.state_dict(), resumed.state_dict(),
                        "array training state resume")


def test_early_stop_state_survives_resume(tiny_dataset, tmp_path):
    """A run killed after early stopping triggered does not resume into
    extra epochs."""
    config = TrainConfig(epochs=12, eval_every=1, batch_size=64,
                         learning_rate=0.05, patience=1)
    reference = _fresh("BPR", tiny_dataset)
    ref_result = train_model(reference, tiny_dataset, config)
    if ref_result.epochs_run == config.epochs:
        pytest.skip("early stopping did not trigger on this substrate")

    resumed = _fresh("BPR", tiny_dataset)
    snapshot = tmp_path / "stop.npz"
    train_model(resumed, tiny_dataset, config, snapshot_path=snapshot)
    again = _fresh("BPR", tiny_dataset)
    again_result = train_model(again, tiny_dataset, config,
                               snapshot_path=snapshot)
    assert again_result.epochs_run == ref_result.epochs_run
    _assert_state_equal(reference.state_dict(), again.state_dict(),
                        "early-stopped resume")
