"""Tests for BPR negative sampling."""

from __future__ import annotations

import numpy as np

from repro.train.sampler import BPRSampler


def _sampler(tiny_dataset, seed=0):
    return BPRSampler(tiny_dataset.split.train, tiny_dataset.num_items,
                      tiny_dataset.split.warm_items,
                      np.random.default_rng(seed))


class TestNegatives:
    def test_negatives_are_warm(self, tiny_dataset):
        sampler = _sampler(tiny_dataset)
        warm = set(tiny_dataset.split.warm_items.tolist())
        users = tiny_dataset.split.train[:50, 0]
        negatives = sampler.sample_negatives(users)
        assert all(int(n) in warm for n in negatives)

    def test_negatives_avoid_positives(self, tiny_dataset):
        sampler = _sampler(tiny_dataset)
        users = tiny_dataset.split.train[:200, 0]
        negatives = sampler.sample_negatives(users)
        collisions = sum(int(n) in sampler.positives_of(int(u))
                         for u, n in zip(users, negatives))
        assert collisions / len(users) < 0.05

    def test_deterministic_given_seed(self, tiny_dataset):
        users = tiny_dataset.split.train[:20, 0]
        a = _sampler(tiny_dataset, 3).sample_negatives(users)
        b = _sampler(tiny_dataset, 3).sample_negatives(users)
        np.testing.assert_array_equal(a, b)


class TestEpochBatches:
    def test_covers_training_set(self, tiny_dataset):
        sampler = _sampler(tiny_dataset)
        seen = 0
        for users, pos, neg in sampler.epoch_batches(64):
            assert len(users) == len(pos) == len(neg)
            seen += len(users)
        assert seen == len(tiny_dataset.split.train)

    def test_batch_pairs_are_training_pairs(self, tiny_dataset):
        sampler = _sampler(tiny_dataset)
        train_pairs = set(map(tuple, tiny_dataset.split.train.tolist()))
        for users, pos, _ in sampler.epoch_batches(64):
            for u, p in zip(users, pos):
                assert (int(u), int(p)) in train_pairs

    def test_shuffling_differs_between_epochs(self, tiny_dataset):
        sampler = _sampler(tiny_dataset)
        first = next(iter(sampler.epoch_batches(64)))[0].copy()
        second = next(iter(sampler.epoch_batches(64)))[0].copy()
        assert not np.array_equal(first, second)
