"""Tests for learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.optim import Adam
from repro.train.schedulers import (ConstantLR, CosineAnnealingLR, StepLR,
                                    WarmupLR, build_scheduler)


def make_optimizer(lr=0.1):
    param = Tensor(np.zeros(2), requires_grad=True)
    return Adam([param], lr=lr)


class TestSchedules:
    def test_constant(self):
        opt = make_optimizer()
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_decay(self):
        opt = make_optimizer()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.current_lr]
        for _ in range(4):
            sched.step()
            lrs.append(sched.current_lr)
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[2] == pytest.approx(0.05)
        assert lrs[4] == pytest.approx(0.025)

    def test_cosine_monotone_decreasing(self):
        opt = make_optimizer()
        sched = CosineAnnealingLR(opt, total_epochs=10)
        lrs = [sched.current_lr]
        for _ in range(10):
            sched.step()
            lrs.append(sched.current_lr)
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.1 * 0.01, rel=0.01)

    def test_warmup_ramps_then_holds(self):
        opt = make_optimizer()
        sched = WarmupLR(opt, warmup_epochs=4)
        lrs = [sched.current_lr]
        for _ in range(6):
            sched.step()
            lrs.append(sched.current_lr)
        assert lrs[0] == pytest.approx(0.1 / 4)
        assert lrs[3] == pytest.approx(0.1)
        assert lrs[6] == pytest.approx(0.1)

    def test_factory_names(self):
        for name in ("constant", "step", "cosine", "warmup-cosine"):
            opt = make_optimizer()
            sched = build_scheduler(name, opt, epochs=10)
            sched.step()
            assert 0.0 < opt.lr <= 0.1 + 1e-12

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_scheduler("exponential", make_optimizer(), 10)


class TestTrainerIntegration:
    def test_schedule_applies_during_training(self, tiny_dataset):
        from repro.baselines import create_model
        from repro.train import TrainConfig, train_model
        model = create_model("BPR", tiny_dataset, embedding_dim=8, seed=0)
        result = train_model(
            model, tiny_dataset,
            TrainConfig(epochs=3, eval_every=3, batch_size=128,
                        lr_schedule="cosine"))
        assert np.isfinite(result.losses).all()
