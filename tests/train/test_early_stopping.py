"""Tests for early stopping."""

from repro.train.early_stopping import EarlyStopping


class TestEarlyStopping:
    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2)
        assert stopper.update(0.1, 0)
        assert not stopper.update(0.05, 1)
        assert stopper.update(0.2, 2)
        assert not stopper.should_stop

    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        assert not stopper.should_stop
        stopper.update(0.3, 2)
        assert stopper.should_stop

    def test_best_tracked(self):
        stopper = EarlyStopping(patience=3)
        stopper.update(0.1, 0)
        stopper.update(0.9, 1)
        stopper.update(0.4, 2)
        assert stopper.best_value == 0.9
        assert stopper.best_epoch == 1

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5, 0)
        assert not stopper.update(0.55, 1)  # below delta
        assert stopper.should_stop
