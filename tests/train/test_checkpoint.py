"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.train import (TrainConfig, load_checkpoint, peek_metadata,
                         save_checkpoint, train_model)


@pytest.fixture()
def trained_bpr(tiny_dataset):
    model = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
    train_model(model, tiny_dataset,
                TrainConfig(epochs=2, eval_every=2, batch_size=128))
    return model


class TestRoundTrip:
    def test_scores_identical_after_reload(self, tiny_dataset, trained_bpr,
                                           tmp_path):
        path = tmp_path / "bpr.npz"
        save_checkpoint(trained_bpr, path, metadata={"epochs": 2})
        fresh = create_model("BPR", tiny_dataset, embedding_dim=16, seed=9)
        meta = load_checkpoint(fresh, path)
        assert meta == {"epochs": 2}
        np.testing.assert_allclose(
            fresh.score_users(np.arange(5)),
            trained_bpr.score_users(np.arange(5)))

    def test_firzen_roundtrip(self, tiny_dataset, tmp_path):
        model = create_model("Firzen", tiny_dataset, embedding_dim=16,
                             seed=0)
        train_model(model, tiny_dataset,
                    TrainConfig(epochs=1, eval_every=1, batch_size=128))
        path = tmp_path / "firzen.npz"
        save_checkpoint(model, path)
        fresh = create_model("Firzen", tiny_dataset, embedding_dim=16,
                             seed=0)
        load_checkpoint(fresh, path)
        fresh.eval()
        model.eval()
        model.invalidate()
        np.testing.assert_allclose(
            fresh.score_users(np.arange(3)),
            model.score_users(np.arange(3)), atol=1e-10)

    def test_peek_metadata(self, trained_bpr, tmp_path):
        path = tmp_path / "bpr.npz"
        save_checkpoint(trained_bpr, path, metadata={"dataset": "tiny"})
        meta = peek_metadata(path)
        assert meta["model_class"] == "BPRModel"
        assert meta["dataset"] == "tiny"


class TestValidation:
    def test_wrong_model_class_rejected(self, tiny_dataset, trained_bpr,
                                        tmp_path):
        path = tmp_path / "bpr.npz"
        save_checkpoint(trained_bpr, path)
        other = create_model("LightGCN", tiny_dataset, embedding_dim=16,
                             seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_wrong_shape_rejected(self, tiny_dataset, trained_bpr,
                                  tmp_path):
        path = tmp_path / "bpr.npz"
        save_checkpoint(trained_bpr, path)
        other = create_model("BPR", tiny_dataset, embedding_dim=8, seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)
