"""Tests for negative-sampling strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.train.sampler import BPRSampler


def _sampler(tiny_dataset, strategy, seed=0, **kw):
    return BPRSampler(tiny_dataset.split.train, tiny_dataset.num_items,
                      tiny_dataset.split.warm_items,
                      np.random.default_rng(seed), strategy=strategy, **kw)


class TestPopularityStrategy:
    def test_popular_items_oversampled(self, tiny_dataset):
        sampler = _sampler(tiny_dataset, "popularity", alpha=1.0)
        counts = np.zeros(tiny_dataset.num_items)
        items, freq = np.unique(tiny_dataset.split.train[:, 1],
                                return_counts=True)
        counts[items] = freq
        warm = tiny_dataset.split.warm_items
        popular = warm[np.argmax(counts[warm])]
        rare = warm[np.argmin(counts[warm])]
        draws = sampler._draw(4000)
        popular_rate = float((draws == popular).mean())
        rare_rate = float((draws == rare).mean())
        assert popular_rate > rare_rate

    def test_negatives_still_warm_and_clean(self, tiny_dataset):
        sampler = _sampler(tiny_dataset, "popularity")
        warm = set(tiny_dataset.split.warm_items.tolist())
        users = tiny_dataset.split.train[:100, 0]
        negatives = sampler.sample_negatives(users)
        assert all(int(n) in warm for n in negatives)

    def test_unknown_strategy_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            _sampler(tiny_dataset, "adversarial")

    def test_uniform_covers_warm_items(self, tiny_dataset):
        sampler = _sampler(tiny_dataset, "uniform")
        draws = sampler._draw(5000)
        covered = len(set(draws.tolist()))
        assert covered > 0.8 * len(tiny_dataset.split.warm_items)
