"""Step-tape on/off training parity (ISSUE 6 acceptance criteria).

The contract: ``REPRO_TAPE=1`` (trace the first step of each graph
structure, replay the plan afterwards) and ``REPRO_TAPE=0`` (plain
per-step dict sweep) follow the *identical* floating-point and RNG
trajectory. Verified via :func:`repro.train.fingerprint.
training_fingerprint` — parameters, loss curve, and every reachable RNG
position hash-equal — for all four roster models, including a
kill-and-resume mid-training under the tape.
"""

from __future__ import annotations

import pytest

from repro.baselines import create_model
from repro.engine.plan import tape_mode
from repro.train import TrainConfig, train_model
from repro.train.fingerprint import training_fingerprint

MODELS = ("BPR", "LightGCN", "KGAT", "Firzen")


def _config(epochs: int = 3) -> TrainConfig:
    return TrainConfig(epochs=epochs, eval_every=2, batch_size=64,
                       learning_rate=0.05, patience=10)


def _train(name, dataset, tape_on, **kwargs):
    model = create_model(name, dataset, embedding_dim=16, seed=0)
    with tape_mode(tape_on):
        result = train_model(model, dataset, _config(), **kwargs)
    return model, result


@pytest.mark.parametrize("model_name", MODELS)
def test_tape_on_off_fingerprints_match(model_name, tiny_dataset):
    taped_model, taped_result = _train(model_name, tiny_dataset, True)
    plain_model, plain_result = _train(model_name, tiny_dataset, False)

    taped = training_fingerprint(taped_model, taped_result)
    plain = training_fingerprint(plain_model, plain_result)
    assert taped["combined"] == plain["combined"], (
        f"{model_name}: taped vs untaped fingerprints diverged "
        f"({ {k: (taped[k], plain[k]) for k in taped if taped[k] != plain[k]} })")

    # The tape must actually have been exercised, not silently skipped.
    assert taped_result.tape_stats is not None
    assert taped_result.tape_stats["replays"] > 0
    assert plain_result.tape_stats is None


class _Killed(Exception):
    pass


@pytest.mark.parametrize("model_name", ("BPR", "Firzen"))
def test_tape_kill_resume_matches_untaped(model_name, tiny_dataset,
                                          tmp_path):
    """Kill a taped run mid-training, resume it (plans re-trace — they
    are structural, never serialized), and require the final fingerprint
    to equal an uninterrupted *untaped* run's."""
    def kill_hook(epoch, model):
        if epoch == 1:
            raise _Killed()

    with pytest.raises(_Killed):
        _train(model_name, tiny_dataset, True,
               snapshot_path=tmp_path / "tape.npz", epoch_hook=kill_hook)

    resumed_model, resumed_result = _train(
        model_name, tiny_dataset, True, snapshot_path=tmp_path / "tape.npz")
    plain_model, plain_result = _train(model_name, tiny_dataset, False)

    resumed = training_fingerprint(resumed_model, resumed_result)
    plain = training_fingerprint(plain_model, plain_result)
    assert resumed["combined"] == plain["combined"]

    # Counters survive the snapshot: the resumed run continues the
    # killed run's totals (>= one trace per segment) instead of
    # restarting them.
    stats = resumed_result.tape_stats
    assert stats["traces"] >= 2
    assert stats["replays"] > 0
