"""Tests for table rendering helpers."""

from repro.eval.metrics import MetricResult
from repro.eval.protocol import ScenarioResult
from repro.utils.tables import format_table, scenario_rows


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"Method": "BPR", "R@20": 1.23}, {"Method": "Firzen",
                                                  "R@20": 4.56}]
        text = format_table(rows, title="Table II")
        assert "Table II" in text
        assert "BPR" in text and "Firzen" in text
        assert "4.56" in text

    def test_empty(self):
        assert format_table([], title="x") == "x"

    def test_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows)
        assert "b" in text


class TestScenarioRows:
    def test_three_settings(self):
        cold = MetricResult(20, 0.1, 0.1, 0.1, 0.1, 0.1, 4)
        warm = MetricResult(20, 0.2, 0.2, 0.2, 0.2, 0.2, 4)
        rows = scenario_rows("Firzen", "MM+KG", ScenarioResult(cold, warm))
        assert [r["Setting"] for r in rows] == ["Cold", "Warm", "HM"]
        assert rows[0]["R@20"] == 10.0
        assert rows[2]["R@20"] > 0
