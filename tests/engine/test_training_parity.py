"""End-to-end: folded-operator training equals layer-by-layer training.

The acceptance bar for the engine refactor — precompiling multi-hop
operators must not change what models learn, only how fast. Training is
fully deterministic per seed, so the two schedules must produce the same
evaluation metrics (well within 1e-5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine
from repro.baselines import create_model
from repro.eval import evaluate_model
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=3, eval_every=4, batch_size=128,
                    learning_rate=0.05)


@pytest.fixture()
def fold_toggle():
    """Restore the process engine's configuration after the test."""
    eng = engine.get_engine()
    before = (eng.fold, eng.max_density, eng.max_cost_ratio)
    yield
    engine.configure(fold=before[0], max_density=before[1],
                     max_cost_ratio=before[2])


def _metrics(model, dataset) -> np.ndarray:
    result = evaluate_model(model, dataset.split)
    return np.array([result.cold.recall, result.cold.mrr,
                     result.warm.recall, result.warm.mrr,
                     result.hm.recall, result.hm.mrr])


@pytest.mark.parametrize("name", ["LightGCN", "Firzen"])
def test_folded_training_matches_layerwise(tiny_dataset, fold_toggle, name):
    metrics = {}
    folded_plans = {}
    for fold in (True, False):
        # A permissive guard so folding genuinely happens on the tiny
        # graphs (their power fill-in would otherwise trip the cost
        # guard and make the comparison vacuous).
        engine.configure(fold=fold, max_density=1.0,
                         max_cost_ratio=np.inf)
        model = create_model(name, tiny_dataset, embedding_dim=16, seed=0,
                             **({"num_layers": 3}
                                if name == "LightGCN" else {}))
        train_model(model, tiny_dataset, QUICK)
        metrics[fold] = _metrics(model, tiny_dataset)
        folded_plans[fold] = engine.get_engine().stats.plans_folded
    assert folded_plans[True] > 0, "fold never engaged; comparison vacuous"
    np.testing.assert_allclose(metrics[True], metrics[False], atol=1e-5)
