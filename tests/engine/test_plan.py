"""Step-plan mechanics: trace, validate, replay, invalidate, fall back.

The contract under test (see ``src/repro/engine/plan.py``): a traced
plan replays the *identical* floating-point sequence the dict sweep
would run — gradients agree bit-for-bit — and any structural change to
the graph fails validation by identity and falls back to a fresh trace
instead of replaying a stale schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.engine.plan import MAX_PLANS, BufferPool, StepPlanner


def _loss(w, b, x, extra_term=False):
    """A small graph with shared nodes, a fan-in, and a no-grad input."""
    h = (x.matmul(w) + b).relu()
    out = (h * h).sum() + h.sum()
    if extra_term:
        out = out + (h * 2.0).sum()
    return out


def _grads(params):
    return [None if p.grad is None else np.array(p.grad, copy=True)
            for p in params]


@pytest.fixture()
def setup(rng):
    w = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
    b = Tensor(rng.standard_normal(4), requires_grad=True)
    x = Tensor(rng.standard_normal((8, 6)))
    return w, b, x


def _taped_step(planner, w, b, x, **kwargs):
    w.grad = b.grad = None
    with planner.recording():
        loss = _loss(w, b, x, **kwargs)
        planner.backward(loss)
    return _grads([w, b])


def _sweep_step(w, b, x, **kwargs):
    w.grad = b.grad = None
    _loss(w, b, x, **kwargs).backward()
    return _grads([w, b])


def test_replay_matches_sweep_bitwise(setup):
    w, b, x = setup
    planner = StepPlanner()
    for step in range(4):
        taped = _taped_step(planner, w, b, x)
        plain = _sweep_step(w, b, x)
        for got, want in zip(taped, plain):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want), f"step {step}"
    assert planner.traces == 1
    assert planner.replays == 3
    assert planner.fallbacks == 0


def test_structure_change_falls_back_and_retraces(setup):
    w, b, x = setup
    planner = StepPlanner()
    _taped_step(planner, w, b, x)
    # Different node count -> plan cache miss -> fresh trace.
    taped = _taped_step(planner, w, b, x, extra_term=True)
    assert np.array_equal(taped[0], _sweep_step(w, b, x, extra_term=True)[0])
    assert planner.traces == 2
    assert planner.fallbacks == 0
    # Both structures now have plans; each replays.
    _taped_step(planner, w, b, x)
    _taped_step(planner, w, b, x, extra_term=True)
    assert planner.replays == 2


def test_same_size_different_wiring_falls_back(rng):
    """Two graphs with equal node counts but different edges must not
    share a replay — validation catches the rewiring by identity."""
    a = Tensor(rng.standard_normal(5), requires_grad=True)
    c = Tensor(rng.standard_normal(5), requires_grad=True)
    planner = StepPlanner()

    def step(first):
        a.grad = c.grad = None
        with planner.recording():
            # Same op count either way; the fan-in target differs.
            base = (a * c) if first else (c * a)
            loss = (base.relu() + (a if first else c)).sum()
            planner.backward(loss)
        return _grads([a, c])

    step(True)
    got = step(False)
    assert planner.fallbacks == 1 and planner.traces == 2
    a.grad = c.grad = None
    ((c * a).relu() + c).sum().backward()
    want = _grads([a, c])
    assert np.array_equal(got[0], want[0])
    assert np.array_equal(got[1], want[1])


def test_off_tape_parent_swap_falls_back(rng):
    """Replacing an identity-stable leaf (what ``load_state_dict`` or a
    memo invalidation does) must invalidate the plan."""
    w1 = Tensor(rng.standard_normal(4), requires_grad=True)
    w2 = Tensor(rng.standard_normal(4), requires_grad=True)
    planner = StepPlanner()

    def step(w):
        w.grad = None
        with planner.recording():
            loss = (w * 3.0).relu().sum()
            planner.backward(loss)

    step(w1)
    step(w1)
    assert planner.replays == 1
    step(w2)  # same structure and size, different leaf object
    assert planner.fallbacks == 1 and planner.traces == 2
    w2.grad = None
    (w2 * 3.0).relu().sum().backward()
    step(w2)


def test_non_scalar_root_rejected(setup):
    w, b, x = setup
    planner = StepPlanner()
    with planner.recording():
        out = x.matmul(w) + b
        with pytest.raises(ValueError, match="scalar"):
            planner.backward(out)


def test_plan_cache_bounded(rng):
    planner = StepPlanner()
    v = Tensor(rng.standard_normal(3), requires_grad=True)
    for depth in range(1, MAX_PLANS + 3):
        v.grad = None
        with planner.recording():
            t = v
            for _ in range(depth):
                t = t * 1.5
            planner.backward(t.sum())
    assert len(planner._plans) <= MAX_PLANS
    assert planner.traces == MAX_PLANS + 2


def test_rowsparse_gather_replay(rng):
    """Embedding-style gathers produce RowSparseGrad leaves; replay must
    keep them sparse-for-lazy semantics identical to the sweep."""
    table = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
    idx = np.array([1, 3, 3, 7])
    planner = StepPlanner()

    def taped():
        table.grad = None
        with planner.recording():
            loss = table.take_rows(idx).sum()
            planner.backward(loss)
        return table.grad

    def plain():
        table.grad = None
        table.take_rows(idx).sum().backward()
        return table.grad

    for _ in range(3):
        got, want = taped(), plain()
        got = got.to_dense() if hasattr(got, "to_dense") else got
        want = want.to_dense() if hasattr(want, "to_dense") else want
        assert np.array_equal(got, want)
    assert planner.replays == 2


def test_stats_roundtrip():
    planner = StepPlanner()
    planner.traces, planner.replays, planner.fallbacks = 2, 17, 1
    fresh = StepPlanner()
    fresh.load_stats(planner.stats())
    assert fresh.stats() == {"traces": 2, "replays": 17, "fallbacks": 1}


class TestBufferPool:
    def test_reuses_per_key(self):
        pool = BufferPool()
        a = pool.ones((3, 2), np.float64)
        assert a is pool.ones((3, 2), np.float64)
        assert a is not pool.ones((3, 2), np.float32)
        assert a is not pool.filled((3, 2), np.float64, 0.0)
        assert np.array_equal(a, np.ones((3, 2)))

    def test_buffers_are_read_only(self):
        pool = BufferPool()
        buf = pool.ones((2,), np.float64)
        with pytest.raises(ValueError):
            buf[0] = 5.0

    def test_clear(self):
        pool = BufferPool()
        a = pool.ones((2,), np.float64)
        pool.clear()
        assert a is not pool.ones((2,), np.float64)
