"""Propagation plans: parity, gradients, caching, dtype stability."""

from __future__ import annotations

import gc

import numpy as np
import scipy.sparse as sp
import pytest

from repro.autograd import Tensor, mean_stack
from repro.engine import (OPERATOR_DTYPE, PropagationEngine, PropagationPlan,
                          apply_dense, as_operator, mean_aggregation_operator,
                          propagate)
from repro.graphs.interaction import InteractionGraph
from repro.graphs.item_item import build_item_item_graphs
from repro.graphs.user_user import UserUserGraph


@pytest.fixture()
def engine() -> PropagationEngine:
    """A private engine instance so tests never pollute the singleton."""
    return PropagationEngine()


def graph_operators(dataset) -> dict:
    """One frozen operator per graph type of the paper."""
    interaction = InteractionGraph(dataset.num_users, dataset.num_items,
                                   dataset.split.train)
    item_graphs = build_item_item_graphs(
        {m: dataset.features[m] for m in dataset.modalities}, 5,
        dataset.split.warm_items, dataset.split.is_cold)
    user_graph = UserUserGraph(interaction.user_item_matrix, 5)
    return {
        "interaction": interaction.norm_adjacency,
        "item_item": item_graphs[dataset.modalities[0]].train_adjacency,
        "user_user": user_graph.attention,
    }


class TestFoldedParity:
    """Folded and layer-by-layer schedules are the same linear map —
    on every one of the paper's three graph types."""

    @pytest.mark.parametrize("graph_kind",
                             ["interaction", "item_item", "user_user"])
    @pytest.mark.parametrize("pooling", ["mean", "last"])
    def test_forward_parity(self, tiny_dataset, rng, graph_kind, pooling):
        operator = graph_operators(tiny_dataset)[graph_kind]
        x = Tensor(rng.normal(size=(operator.shape[0], 8))
                   .astype(np.float32))
        folded = PropagationPlan(operator, 2, pooling, fold=True,
                                 max_density=1.0, max_cost_ratio=np.inf)
        unfolded = PropagationPlan(operator, 2, pooling, fold=False)
        assert folded.is_folded and not unfolded.is_folded
        np.testing.assert_allclose(folded.apply(x).data,
                                   unfolded.apply(x).data,
                                   rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("graph_kind",
                             ["interaction", "item_item", "user_user"])
    def test_gradient_parity(self, tiny_dataset, rng, graph_kind):
        operator = graph_operators(tiny_dataset)[graph_kind]
        seed = rng.normal(size=(operator.shape[0], 8)).astype(np.float32)
        grads = {}
        for fold in (True, False):
            x = Tensor(seed.copy(), requires_grad=True)
            plan = PropagationPlan(operator, 2, "mean", fold=fold,
                                   max_density=1.0, max_cost_ratio=np.inf)
            plan.apply(x).sum().backward()
            grads[fold] = x.grad
        np.testing.assert_allclose(grads[True], grads[False],
                                   rtol=1e-4, atol=1e-6)

    def test_apply_layers_matches_manual_stack(self, tiny_dataset, rng):
        operator = graph_operators(tiny_dataset)["interaction"]
        x = Tensor(rng.normal(size=(operator.shape[0], 4))
                   .astype(np.float32))
        plan = PropagationPlan(operator, 3, "mean")
        layers = plan.apply_layers(x)
        assert len(layers) == 4
        np.testing.assert_allclose(mean_stack(layers).data,
                                   PropagationPlan(operator, 3, "mean",
                                                   fold=False).apply(x).data,
                                   rtol=1e-5, atol=1e-7)


class TestDensityGuardFallback:
    def test_guarded_plan_falls_back_and_stays_correct(self, rng):
        operator = as_operator(sp.random(30, 30, density=0.3, format="csr",
                                         random_state=5))
        engine = PropagationEngine(max_density=0.0)
        x = Tensor(rng.normal(size=(30, 4)).astype(np.float32))
        plan = engine.plan(operator, 2, "mean")
        assert not plan.is_folded
        reference = PropagationPlan(operator, 2, "mean", fold=False)
        np.testing.assert_allclose(plan.apply(x).data,
                                   reference.apply(x).data)
        assert engine.stats.plans_folded == 0


class TestDtypeStability:
    def test_float32_propagation_stays_float32(self, rng):
        """A float32 operand multiplies a float32 operator variant: no
        upcast anywhere in forward or backward."""
        operator = as_operator(sp.random(20, 20, density=0.2, format="csr",
                                         random_state=2))
        x = Tensor(rng.normal(size=(20, 4)).astype(np.float32),
                   requires_grad=True)
        out = propagate(operator, x, num_layers=2, pooling="mean")
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_float64_operand_keeps_float64_and_exact_operator(self, rng):
        operator = as_operator(sp.random(20, 20, density=0.2, format="csr",
                                         random_state=2))
        x = Tensor(rng.normal(size=(20, 4)))
        plan = PropagationPlan(operator, 2, "mean", fold=False)
        assert plan.apply(x).data.dtype == np.float64
        # The float64 variant is the original operator, not a float32
        # round-trip: training math is bit-identical to the pre-engine
        # implementation.
        single, _ = plan._matrices(np.dtype(np.float64))
        assert single is operator

    def test_dtype_variants_materialized_once(self, rng):
        operator = as_operator(sp.random(20, 20, density=0.2, format="csr",
                                         random_state=2))
        plan = PropagationPlan(operator, 2, "mean")
        first, _ = plan._matrices(np.dtype(np.float32))
        again, _ = plan._matrices(np.dtype(np.float32))
        assert first is again
        assert first.dtype == np.float32

    def test_plan_operator_is_pinned_csr(self, rng):
        matrix = sp.random(20, 20, density=0.2, format="coo",
                           random_state=3)
        plan = PropagationPlan(matrix, 1, "last")
        assert plan.operator.format == "csr"

    def test_as_operator_preserves_nonzero_order(self, rng):
        """Re-sorting CSR indices would change summation order and
        perturb results by ulps; already-CSR inputs pass through."""
        matrix = sp.random(20, 20, density=0.2, format="csr",
                           random_state=3)
        assert as_operator(matrix) is matrix

    def test_as_operator_compact_dtype_for_serving(self, rng):
        matrix = sp.random(20, 20, density=0.2, format="csr",
                           random_state=3)
        compact = as_operator(matrix, dtype=OPERATOR_DTYPE)
        assert compact.dtype == np.float32
        assert as_operator(compact, dtype=OPERATOR_DTYPE) is compact


class TestEngineCache:
    def test_plan_cache_hits_on_same_operator(self, engine, rng):
        operator = as_operator(sp.random(25, 25, density=0.1, format="csr",
                                         random_state=4))
        x = Tensor(rng.normal(size=(25, 4)).astype(np.float32))
        engine.propagate(operator, x, 2)
        engine.propagate(operator, x, 2)
        assert engine.stats.plans_built == 1
        assert engine.stats.plan_hits == 1

    def test_new_operator_builds_new_plan(self, engine, rng):
        x = Tensor(rng.normal(size=(25, 4)).astype(np.float32))
        for state in (6, 7):
            operator = as_operator(sp.random(25, 25, density=0.1,
                                             format="csr",
                                             random_state=state))
            engine.propagate(operator, x, 2)
        assert engine.stats.plans_built == 2

    def test_normalized_cache_and_bypass(self, engine):
        adjacency = sp.random(25, 25, density=0.1, format="csr",
                              random_state=8)
        first = engine.normalized(adjacency, "sym")
        assert engine.normalized(adjacency, "sym") is first
        assert engine.stats.normalized_hits == 1
        engine.normalized(adjacency, "sym", cache=False)
        assert engine.stats.normalized_built == 2

    def test_dropped_operators_take_their_plans_with_them(self, engine,
                                                          rng):
        """Plans ride on the source matrix: dropping the graph (rebind,
        per-batch augmentation) must free the compiled plan too."""
        import weakref

        x = Tensor(rng.normal(size=(25, 4)).astype(np.float32))
        operator = as_operator(sp.random(25, 25, density=0.1, format="csr",
                                         random_state=9))
        plan_ref = weakref.ref(engine.plan(operator, 2))
        assert plan_ref() is not None
        del operator
        gc.collect()
        assert plan_ref() is None

    def test_clear_invalidates_cached_plans(self, engine, rng):
        operator = as_operator(sp.random(25, 25, density=0.1, format="csr",
                                         random_state=10))
        first = engine.plan(operator, 2)
        engine.clear()
        assert engine.plan(operator, 2) is not first
        assert engine.stats.plans_built == 2

    def test_engines_never_share_cache_entries(self, rng):
        """Two engines with different fold configurations must not serve
        each other's plans off the shared per-matrix cache dict."""
        operator = as_operator(sp.random(25, 25, density=0.1, format="csr",
                                         random_state=11))
        folding = PropagationEngine(fold=True, max_density=1.0,
                                    max_cost_ratio=np.inf)
        plain = PropagationEngine(fold=False)
        assert folding.plan(operator, 2).is_folded
        assert not plain.plan(operator, 2).is_folded

    def test_fold_opt_out_for_throwaway_graphs(self, rng):
        """plan(fold=False) must not pay the folding sparse-sparse
        products, and the decision is part of the cache key."""
        operator = as_operator(sp.random(25, 25, density=0.1, format="csr",
                                         random_state=12))
        engine = PropagationEngine(fold=True, max_density=1.0,
                                   max_cost_ratio=np.inf)
        assert not engine.plan(operator, 2, fold=False).is_folded
        assert engine.plan(operator, 2).is_folded


class TestServingOperators:
    def test_mean_aggregation_operator_is_neighbor_mean(self, rng):
        neighbors = np.array([[0, 2, 4], [1, 1, 3]])
        vectors = rng.normal(size=(5, 6)).astype(np.float32)
        operator = mean_aggregation_operator(neighbors, 5)
        out = apply_dense(operator, vectors)
        np.testing.assert_allclose(out, vectors[neighbors].mean(axis=1),
                                   rtol=1e-6, atol=1e-7)
        assert out.dtype == OPERATOR_DTYPE
