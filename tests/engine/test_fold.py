"""Operator folding: correctness against dense reference, guards."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import pytest

from repro.engine import MAX_DENSITY, OPERATOR_DTYPE, density, fold_walk


@pytest.fixture()
def operator(rng) -> sp.csr_matrix:
    return sp.random(40, 40, density=0.08, format="csr",
                     random_state=7).astype(np.float32)


def dense_mean_walk(matrix: np.ndarray, num_layers: int) -> np.ndarray:
    term = np.eye(matrix.shape[0])
    total = term.copy()
    for _ in range(num_layers):
        term = term @ matrix
        total += term
    return total / (num_layers + 1)


class TestFoldWalk:
    @pytest.mark.parametrize("num_layers", [1, 2, 3])
    def test_mean_matches_dense_reference(self, operator, num_layers):
        folded = fold_walk(operator, num_layers, "mean", max_density=1.0,
                           max_cost_ratio=np.inf)
        reference = dense_mean_walk(operator.toarray().astype(np.float64),
                                    num_layers)
        np.testing.assert_allclose(folded.toarray(), reference,
                                   rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("num_layers", [2, 3])
    def test_last_matches_matrix_power(self, operator, num_layers):
        folded = fold_walk(operator, num_layers, "last", max_density=1.0,
                           max_cost_ratio=np.inf)
        reference = np.linalg.matrix_power(
            operator.toarray().astype(np.float64), num_layers)
        np.testing.assert_allclose(folded.toarray(), reference,
                                   rtol=1e-5, atol=1e-6)

    def test_zero_layers_is_identity(self, operator):
        folded = fold_walk(operator, 0, "mean")
        np.testing.assert_allclose(folded.toarray(),
                                   np.eye(operator.shape[0]))

    def test_one_layer_last_is_the_operator_itself(self, operator):
        assert fold_walk(operator, 1, "last") is operator

    def test_output_is_float32_csr(self, operator):
        folded = fold_walk(operator, 2, "mean", max_density=1.0,
                           max_cost_ratio=np.inf)
        assert folded.format == "csr"
        assert folded.dtype == OPERATOR_DTYPE

    def test_unknown_pooling_rejected(self, operator):
        with pytest.raises(ValueError, match="pooling"):
            fold_walk(operator, 2, "sum")


class TestGuards:
    def test_density_guard_refuses_densifying_folds(self):
        dense_ish = sp.random(30, 30, density=0.4, format="csr",
                              random_state=3).astype(np.float32)
        assert fold_walk(dense_ish, 3, "mean",
                         max_density=MAX_DENSITY) is None

    def test_zero_density_budget_always_falls_back(self, operator):
        assert fold_walk(operator, 2, "mean", max_density=0.0) is None

    def test_cost_guard_refuses_unprofitable_folds(self, operator):
        # With a ratio of 0 no folded operator can ever be cheaper than
        # the layer-by-layer schedule it replaces.
        assert fold_walk(operator, 2, "mean", max_density=1.0,
                         max_cost_ratio=0.0) is None

    def test_guard_accepts_when_powers_stay_sparse(self):
        # A permutation matrix's powers never fill in: folding must win.
        n = 50
        perm = np.random.default_rng(0).permutation(n)
        matrix = sp.csr_matrix(
            (np.ones(n, dtype=np.float32), (np.arange(n), perm)),
            shape=(n, n))
        folded = fold_walk(matrix, 3, "last")
        assert folded is not None
        assert density(folded) == pytest.approx(1.0 / n)
