"""Optimizer behavior tests."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd.optim import SGD, Adam, clip_grad_norm


def quadratic_loss(param: Tensor) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Tensor(np.zeros(3), requires_grad=True)
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(param).backward()
                opt.step()
            return quadratic_loss(param).item()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Tensor(np.ones(3) * 10.0, requires_grad=True)
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param.sum() * 0.0).backward()
        opt.step()
        assert np.all(np.abs(param.data) < 10.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_skips_params_without_grad(self):
        used = Tensor(np.zeros(2), requires_grad=True)
        unused = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([used, unused], lr=0.1)
        opt.zero_grad()
        (used * used).sum().backward()
        opt.step()
        np.testing.assert_allclose(unused.data, 1.0)

    def test_first_step_magnitude_bounded_by_lr(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([param], lr=0.1)
        opt.zero_grad()
        quadratic_loss(param).backward()
        opt.step()
        # Adam's bias-corrected first step has magnitude ~lr
        assert np.all(np.abs(param.data) <= 0.1 + 1e-8)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        param.grad = np.full(4, 10.0)
        pre = clip_grad_norm([param], max_norm=1.0)
        assert pre > 1.0
        np.testing.assert_allclose(np.linalg.norm(param.grad), 1.0)

    def test_leaves_small_gradients(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        param.grad = np.full(4, 0.01)
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, 0.01)
