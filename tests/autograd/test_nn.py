"""Tests for neural-network modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.nn import (BatchNorm1d, Dropout, Embedding, LeakyReLU,
                               Linear, Module, MultiHeadSelfAttention,
                               Sequential, Sigmoid)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_bias_disabled(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_parameters_receive_gradients(self, rng):
        layer = Linear(5, 3, rng)
        layer(Tensor(rng.normal(size=(4, 5)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_matches_weight_rows(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([2, 5]))
        np.testing.assert_allclose(out.data, emb.weight.data[[2, 5]])

    def test_gradient_scatters_to_rows(self, rng):
        emb = Embedding(10, 4, rng)
        emb(np.array([1, 1, 3])).sum().backward()
        assert np.all(emb.weight.grad[1] == 2.0)
        assert np.all(emb.weight.grad[3] == 1.0)
        assert np.all(emb.weight.grad[0] == 0.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((200, 10)))
        out = drop(x).data
        zeros = (out == 0).mean()
        assert 0.3 < zeros < 0.7
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(3.0, 2.0, size=(100, 4)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(4, momentum=1.0)
        x = Tensor(rng.normal(3.0, 2.0, size=(100, 4)))
        bn(x)
        bn.eval()
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.05)


class TestModuleDiscovery:
    def test_nested_parameters_found(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(3, 3, rng), Linear(3, 2, rng)]
                self.by_name = {"extra": Linear(2, 2, rng)}

        net = Net()
        # 3 layers x (weight + bias)
        assert len(net.parameters()) == 6
        assert len(net.named_parameters()) == 6

    def test_state_dict_roundtrip(self, rng):
        layer = Linear(4, 4, rng)
        state = layer.state_dict()
        layer.weight.data[...] = 0.0
        layer.load_state_dict(state)
        assert not np.allclose(layer.weight.data, 0.0)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        layer = Linear(4, 4, rng)
        with pytest.raises(ValueError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(3, 3, rng), Dropout(0.5, rng))
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training


class TestSequentialStack:
    def test_discriminator_architecture_runs(self, rng):
        net = Sequential(
            Linear(10, 8, rng), LeakyReLU(0.2), BatchNorm1d(8),
            Dropout(0.2, rng), Linear(8, 1, rng), Sigmoid())
        out = net(Tensor(rng.normal(size=(6, 10))))
        assert out.shape == (6, 1)
        assert np.all((out.data >= 0) & (out.data <= 1))


class TestMultiHeadSelfAttention:
    def test_preserves_shapes(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        mods = [Tensor(rng.normal(size=(5, 8))) for _ in range(2)]
        fused = attn(mods)
        assert len(fused) == 2
        assert all(f.shape == (5, 8) for f in fused)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng)

    def test_single_modality_passthrough_is_finite(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        fused = attn([Tensor(rng.normal(size=(5, 8)))])
        assert np.all(np.isfinite(fused[0].data))

    def test_gradients_reach_projections(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        mods = [Tensor(rng.normal(size=(5, 8)), requires_grad=True)
                for _ in range(2)]
        fused = attn(mods)
        (fused[0].sum() + fused[1].sum()).backward()
        assert attn.w_query[0].grad is not None
        assert mods[0].grad is not None
