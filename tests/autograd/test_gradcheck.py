"""Finite-difference validation of every differentiable primitive.

Two layers of coverage:

* the per-op classes below — one hand-picked case per primitive;
* :class:`TestPrimitiveGrid` — every primitive the step tape records
  (``src/repro/autograd/tape.py``), swept over a grid of random shapes
  and parameter dtypes, plus the fused KGAT-attention / TransR kernels
  and the row-sparse gather paths whose closures the tape replays.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (Tensor, concat, infonce, softmax_cross_entropy,
                            sparse_matmul, stack)
from repro.autograd import fused
from repro.autograd.rowsparse import RowSparseGrad
from repro.components.segments import segment_operators


def numeric_gradient(func, arrays, index, eps=1e-6):
    """Central-difference gradient of sum(func(arrays)) w.r.t. one input."""
    arr = arrays[index]
    grad = np.zeros_like(arr)
    flat = arr.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = func(*[Tensor(a) for a in arrays]).data.sum()
        flat[i] = orig - eps
        minus = func(*[Tensor(a) for a in arrays]).data.sum()
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check(func, *arrays, tol=1e-4):
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = func(*tensors)
    out.sum().backward() if out.data.size > 1 else out.backward()
    for i, t in enumerate(tensors):
        expected = numeric_gradient(func, arrays, i)
        assert t.grad is not None, f"input {i} received no gradient"
        np.testing.assert_allclose(t.grad, expected, atol=tol,
                                   err_msg=f"input {i}")


@pytest.fixture()
def arr(rng):
    return rng.normal(size=(4, 5))


class TestElementwise:
    def test_add(self, rng, arr):
        check(lambda a, b: a + b, arr, rng.normal(size=(4, 5)))

    def test_add_broadcast(self, rng, arr):
        check(lambda a, b: a + b, arr, rng.normal(size=(5,)))

    def test_mul(self, rng, arr):
        check(lambda a, b: a * b, arr, rng.normal(size=(4, 5)))

    def test_sub_scalar_broadcast(self, arr):
        check(lambda a: 1.0 - a, arr)

    def test_div(self, rng, arr):
        check(lambda a, b: a / b, arr, rng.normal(size=(4, 5)) + 3.0)

    def test_pow(self, arr):
        check(lambda a: a ** 3, arr)

    def test_neg(self, arr):
        check(lambda a: -a, arr)


class TestNonlinearities:
    def test_sigmoid(self, arr):
        check(lambda a: a.sigmoid(), arr)

    def test_tanh(self, arr):
        check(lambda a: a.tanh(), arr)

    def test_relu(self, arr):
        check(lambda a: a.relu(), arr + 0.1)  # avoid kink at 0

    def test_leaky_relu(self, arr):
        check(lambda a: a.leaky_relu(0.2), arr + 0.1)

    def test_exp_log(self, arr):
        check(lambda a: (a.exp() + 1.0).log(), arr)

    def test_softplus(self, arr):
        check(lambda a: a.softplus(), arr)

    def test_logsigmoid(self, arr):
        check(lambda a: a.logsigmoid(), arr)

    def test_softmax(self, arr):
        check(lambda a: a.softmax(axis=1), arr)

    def test_sqrt(self, arr):
        check(lambda a: (a * a + 1.0).sqrt(), arr)

    def test_abs(self, arr):
        check(lambda a: a.abs(), arr + 0.1)

    def test_clip_interior(self, arr):
        check(lambda a: a.clip(-10.0, 10.0), arr)


class TestMatrixOps:
    def test_matmul(self, rng):
        check(lambda a, b: a.matmul(b),
              rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_matmul_vector(self, rng):
        check(lambda a, b: a.matmul(b),
              rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_transpose(self, arr):
        check(lambda a: a.transpose().matmul(a), arr)

    def test_reshape(self, arr):
        check(lambda a: a.reshape(2, 10).sum(axis=0), arr)


class TestReductions:
    def test_sum_all(self, arr):
        check(lambda a: a.sum(), arr)

    def test_sum_axis(self, arr):
        check(lambda a: a.sum(axis=0), arr)

    def test_sum_keepdims(self, arr):
        check(lambda a: a.sum(axis=1, keepdims=True) * a, arr)

    def test_mean(self, arr):
        check(lambda a: a.mean(axis=1), arr)

    def test_max(self, rng):
        # distinct values so the argmax is stable under perturbation
        base = rng.permutation(20).reshape(4, 5).astype(float)
        check(lambda a: a.max(axis=1), base)

    def test_norm(self, arr):
        check(lambda a: a.norm(axis=1), arr)

    def test_normalize(self, arr):
        check(lambda a: a.normalize(axis=1), arr)


class TestIndexing:
    def test_getitem(self, arr):
        check(lambda a: a[1:3], arr)

    def test_take_rows_with_duplicates(self, arr):
        check(lambda a: a.take_rows([0, 0, 2, 3]), arr)

    def test_fancy_index_pairs(self, arr):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 3, 0])
        check(lambda a: a[(rows, cols)], arr)


class TestCombinators:
    def test_concat(self, rng):
        check(lambda a, b: concat([a, b], axis=1),
              rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))

    def test_stack(self, rng):
        check(lambda a, b: stack([a, b], axis=0).sum(axis=0),
              rng.normal(size=(3, 2)), rng.normal(size=(3, 2)))

    def test_sparse_matmul(self, rng):
        matrix = sp.random(6, 4, density=0.5, random_state=3, format="csr")
        check(lambda x: sparse_matmul(matrix, x).tanh(),
              rng.normal(size=(4, 3)))

    def test_infonce(self, rng):
        check(lambda a, b: infonce(a, b),
              rng.normal(size=(5, 4)), rng.normal(size=(5, 4)))

    def test_softmax_cross_entropy(self, rng):
        target = np.array([0, 2, 1])
        check(lambda a: softmax_cross_entropy(a, target),
              rng.normal(size=(3, 4)))


# ---------------------------------------------------------------------------
# shape/dtype grid over every tape-recorded primitive
# ---------------------------------------------------------------------------

def _dense(grad):
    if isinstance(grad, RowSparseGrad):
        return grad.to_dense()
    return grad


def check_typed(func, arrays, dtype, tol):
    """Analytic gradient at ``dtype`` vs float64 central differences.

    The float64 numeric gradient is the reference for both dtypes; the
    float32 tolerance absorbs that path's own rounding.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    tensors = [Tensor(a.astype(dtype), requires_grad=True) for a in arrays]
    out = func(*tensors)
    assert out.data.dtype == np.dtype(dtype)
    out.sum().backward() if out.data.size > 1 else out.backward()
    for i, t in enumerate(tensors):
        expected = numeric_gradient(func, arrays, i)
        if t.grad is None:
            # An op is free to ignore an operand entirely — then the
            # numeric gradient must agree that it's zero.
            np.testing.assert_allclose(expected, 0.0, atol=tol,
                                       err_msg=f"input {i} ({dtype})")
            continue
        got = np.asarray(_dense(t.grad), dtype=np.float64)
        np.testing.assert_allclose(got, expected, atol=tol, rtol=tol,
                                   err_msg=f"input {i} ({dtype})")


#: (name, op over (a, b), needs) — `a` is the shaped grid input,
#: `b` a second operand shaped like `a`'s last axis
GRID_OPS = [
    ("add", lambda a, b: a + b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / (b * b + 1.0)),
    ("neg_sub", lambda a, b: -(a - b)),
    ("pow3", lambda a, b: a ** 3),
    ("relu", lambda a, b: (a + 0.1).relu()),
    ("leaky_relu", lambda a, b: (a + 0.1).leaky_relu(0.2)),
    ("sigmoid", lambda a, b: a.sigmoid()),
    ("tanh", lambda a, b: a.tanh()),
    ("exp_log", lambda a, b: (a.exp() + 1.0).log()),
    ("softplus", lambda a, b: a.softplus()),
    ("logsigmoid", lambda a, b: a.logsigmoid()),
    ("sqrt", lambda a, b: (a * a + 1.0).sqrt()),
    ("abs", lambda a, b: (a + 0.1).abs()),
    ("clip", lambda a, b: a.clip(-10.0, 10.0)),
    ("sum", lambda a, b: a.sum()),
    ("sum_axis0", lambda a, b: a.sum(axis=0)),
    ("mean_last", lambda a, b: a.mean(axis=-1)),
    ("reshape", lambda a, b: a.reshape(-1)),
    ("getitem", lambda a, b: a[1:]),
]

SHAPES = [(6,), (3, 4), (2, 3, 4)]
DTYPES = {np.float64: 1e-4, np.float32: 2e-3}


class TestPrimitiveGrid:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("name,op", GRID_OPS, ids=[n for n, _ in GRID_OPS])
    def test_op(self, name, op, shape, dtype, rng):
        a = rng.normal(size=shape)
        b = rng.normal(size=shape[-1:])
        check_typed(op, [a, b], dtype, DTYPES[dtype])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matmul_2d(self, dtype, rng):
        check_typed(lambda a, b: a.matmul(b),
                    [rng.normal(size=(3, 5)), rng.normal(size=(5, 2))],
                    dtype, DTYPES[dtype])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_softmax_norm_2d(self, dtype, rng):
        check_typed(lambda a, b: a.softmax(axis=1) + a.normalize(axis=1),
                    [rng.normal(size=(4, 3)), rng.normal(size=(3,))],
                    dtype, DTYPES[dtype])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_concat_stack(self, dtype, rng):
        check_typed(lambda a, b: concat([a, stack([b, b], axis=0)], axis=0),
                    [rng.normal(size=(2, 4)), rng.normal(size=(4,))],
                    dtype, DTYPES[dtype])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_take_rows_rowsparse_path(self, dtype, rng):
        """Duplicate gathers from one table: the row-sparse gradient
        representation (kept sparse through ``concat``'s
        ``accepts_sparse`` closure) must densify to the exact
        scatter-add a dense path would produce."""
        idx_a = np.array([0, 2, 2, 4])
        idx_b = np.array([4, 1])
        check_typed(
            lambda t, b: concat([t.take_rows(idx_a), t.take_rows(idx_b)],
                                axis=0),
            [rng.normal(size=(5, 3)), rng.normal(size=(3,))],
            dtype, DTYPES[dtype])


class TestFusedKernelGradcheck:
    """Finite differences through the fused KGAT kernels themselves —
    the largest single closures the step tape replays."""

    def _plan(self):
        by_relation = [
            (np.array([0, 0, 1, 2]), np.array([1, 2, 0, 3])),
            (np.array([3, 4]), np.array([0, 1])),
        ]
        plan = fused.RelationPlan(by_relation, num_nodes=5, dim=3)
        ops = segment_operators(plan.segments, 5)
        return plan, ops

    def test_attention_message(self, rng):
        plan, ops = self._plan()
        check(lambda nodes, w, e: fused.attention_message(
                  nodes, w, e, plan, ops),
              rng.normal(size=(5, 3)), rng.normal(size=(2, 3, 2)),
              rng.normal(size=(2, 2)))

    def test_transr_scores(self, rng):
        heads = np.array([0, 3, 1, 2])
        relations = np.array([0, 1, 0, 1])
        tails = np.array([2, 1, 4, 0])
        check(lambda e, w0, w1, r: fused.transr_scores(
                  e, [w0, w1], r, heads, relations, tails),
              rng.normal(size=(5, 3)), rng.normal(size=(3, 2)),
              rng.normal(size=(3, 2)), rng.normal(size=(2, 2)))


class TestGraphStructure:
    def test_gradient_accumulates_across_uses(self, rng):
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        out = (a * 2.0).sum() + (a * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((3, 3), 5.0))

    def test_detach_blocks_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (a.detach() * a).sum()
        out.backward()
        # gradient only through the non-detached factor
        np.testing.assert_allclose(a.grad, a.data)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(4), requires_grad=True)
        x = a
        for _ in range(2000):
            x = x * 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))

    def test_backward_requires_scalar(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward()
