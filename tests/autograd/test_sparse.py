"""Tests for frozen sparse propagation and normalizations."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import (Tensor, build_bipartite_adjacency, row_normalize,
                            row_softmax, sparse_matmul, symmetric_normalize)


class TestSparseMatmul:
    def test_matches_dense(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(
            sparse_matmul(matrix, x).data, matrix.toarray() @ x.data)

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        sparse_matmul(matrix, x).sum().backward()
        expected = matrix.T @ np.ones((5, 3))
        np.testing.assert_allclose(x.grad, expected)


class TestNormalizations:
    def test_symmetric_normalize_zero_rows_stay_zero(self):
        adjacency = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        out = symmetric_normalize(adjacency).toarray()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 0.0)

    def test_symmetric_normalize_regular_graph(self):
        # cycle of 4 nodes, each degree 2 -> every entry 1/2
        adjacency = sp.csr_matrix(np.array(
            [[0, 1, 0, 1], [1, 0, 1, 0], [0, 1, 0, 1], [1, 0, 1, 0]],
            dtype=float))
        out = symmetric_normalize(adjacency).toarray()
        np.testing.assert_allclose(out[out > 0], 0.5)

    def test_row_normalize_rows_sum_to_one(self, rng):
        dense = (rng.random((5, 5)) > 0.5).astype(float)
        dense[0] = 0.0  # zero row must survive
        out = row_normalize(sp.csr_matrix(dense)).toarray()
        sums = out.sum(axis=1)
        for row, total in enumerate(sums):
            if dense[row].sum() > 0:
                np.testing.assert_allclose(total, 1.0)
            else:
                np.testing.assert_allclose(total, 0.0)

    def test_row_softmax_distributes_over_nonzeros(self):
        matrix = sp.csr_matrix(np.array([[1.0, 3.0, 0.0], [0.0, 0.0, 0.0]]))
        out = row_softmax(matrix).toarray()
        np.testing.assert_allclose(out[0].sum(), 1.0)
        assert out[0, 1] > out[0, 0]       # higher count -> higher weight
        assert out[0, 2] == 0.0            # absent edge gets no mass
        np.testing.assert_allclose(out[1], 0.0)


class TestBipartite:
    def test_structure(self):
        adj = build_bipartite_adjacency(
            2, 3, np.array([0, 1]), np.array([0, 2]))
        dense = adj.toarray()
        assert dense.shape == (5, 5)
        assert dense[0, 2] == 1 and dense[2, 0] == 1   # user0 - item0
        assert dense[1, 4] == 1 and dense[4, 1] == 1   # user1 - item2
        np.testing.assert_allclose(dense, dense.T)     # symmetric
        assert dense[:2, :2].sum() == 0                # no user-user edges
        assert dense[2:, 2:].sum() == 0                # no item-item edges
