"""Tests for frozen sparse propagation and normalizations."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import (Tensor, build_bipartite_adjacency, row_normalize,
                            row_softmax, sparse_matmul, symmetric_normalize)


class TestSparseMatmul:
    def test_matches_dense(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(
            sparse_matmul(matrix, x).data, matrix.toarray() @ x.data)

    def test_gradient_is_transpose_product(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        sparse_matmul(matrix, x).sum().backward()
        expected = matrix.T @ np.ones((5, 3))
        np.testing.assert_allclose(x.grad, expected)

    def test_csr_input_is_never_reconverted(self, rng, monkeypatch):
        """Regression: the seed called ``matrix.tocsr()`` on every
        multiply. An already-CSR operator must pass through untouched."""
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="csr")
        calls = []
        original = sp.csr_matrix.tocsr

        def counting_tocsr(self, *args, **kwargs):
            calls.append(self)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(sp.csr_matrix, "tocsr", counting_tocsr)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        for _ in range(3):
            sparse_matmul(matrix, x).sum().backward()
        assert calls == []

    def test_non_csr_input_converted_once_per_call(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0, format="coo")
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(
            sparse_matmul(matrix, x).data, matrix.toarray() @ x.data)

    def test_dense_input_rejected(self, rng):
        with np.testing.assert_raises(TypeError):
            sparse_matmul(np.eye(4), Tensor(rng.normal(size=(4, 3))))

    def test_float32_operand_stays_float32(self, rng):
        matrix = sp.random(5, 4, density=0.6, random_state=0,
                           format="csr").astype(np.float32)
        x = Tensor(rng.normal(size=(4, 3)).astype(np.float32),
                   requires_grad=True)
        out = sparse_matmul(matrix, x)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32


class TestNormalizations:
    def test_normalizers_emit_float64_csr(self, rng):
        """Training operators stay float64 (the published tables'
        dtype); the engine materializes dtype-matched variants once per
        plan for float32 consumers."""
        dense = (rng.random((6, 6)) > 0.5).astype(float)
        matrix = sp.csr_matrix(dense)
        for normalize in (symmetric_normalize, row_normalize, row_softmax):
            out = normalize(matrix)
            assert out.dtype == np.float64
            assert out.format == "csr"

    def test_symmetric_normalize_zero_rows_stay_zero(self):
        adjacency = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        out = symmetric_normalize(adjacency).toarray()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 0.0)

    def test_symmetric_normalize_regular_graph(self):
        # cycle of 4 nodes, each degree 2 -> every entry 1/2
        adjacency = sp.csr_matrix(np.array(
            [[0, 1, 0, 1], [1, 0, 1, 0], [0, 1, 0, 1], [1, 0, 1, 0]],
            dtype=float))
        out = symmetric_normalize(adjacency).toarray()
        np.testing.assert_allclose(out[out > 0], 0.5)

    def test_row_normalize_rows_sum_to_one(self, rng):
        dense = (rng.random((5, 5)) > 0.5).astype(float)
        dense[0] = 0.0  # zero row must survive
        out = row_normalize(sp.csr_matrix(dense)).toarray()
        sums = out.sum(axis=1)
        for row, total in enumerate(sums):
            if dense[row].sum() > 0:
                np.testing.assert_allclose(total, 1.0)
            else:
                np.testing.assert_allclose(total, 0.0)

    def test_row_softmax_distributes_over_nonzeros(self):
        matrix = sp.csr_matrix(np.array([[1.0, 3.0, 0.0], [0.0, 0.0, 0.0]]))
        out = row_softmax(matrix).toarray()
        np.testing.assert_allclose(out[0].sum(), 1.0)
        assert out[0, 1] > out[0, 0]       # higher count -> higher weight
        assert out[0, 2] == 0.0            # absent edge gets no mass
        np.testing.assert_allclose(out[1], 0.0)


class TestBipartite:
    def test_structure(self):
        adj = build_bipartite_adjacency(
            2, 3, np.array([0, 1]), np.array([0, 2]))
        dense = adj.toarray()
        assert dense.shape == (5, 5)
        assert dense[0, 2] == 1 and dense[2, 0] == 1   # user0 - item0
        assert dense[1, 4] == 1 and dense[4, 1] == 1   # user1 - item2
        np.testing.assert_allclose(dense, dense.T)     # symmetric
        assert dense[:2, :2].sum() == 0                # no user-user edges
        assert dense[2:, 2:].sum() == 0                # no item-item edges


class TestRowSoftmaxVectorizationParity:
    """The length-bucketed batched softmax must reproduce the historical
    per-row loop bit-for-bit (same max/exp/sum kernels per lane)."""

    @staticmethod
    def _loop_reference(adjacency):
        matrix = adjacency.tocsr().astype(np.float64).copy()
        for row in range(matrix.shape[0]):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            if start == end:
                continue
            vals = matrix.data[start:end]
            vals = np.exp(vals - vals.max())
            matrix.data[start:end] = vals / vals.sum()
        return matrix

    def test_matches_loop_on_random_graphs(self):
        rng = np.random.default_rng(3)
        for trial in range(6):
            dense = rng.integers(0, 5, size=(23, 23)).astype(float)
            dense *= rng.random(size=dense.shape) < 0.4
            matrix = sp.csr_matrix(dense)
            got = row_softmax(matrix)
            want = self._loop_reference(matrix)
            assert np.array_equal(got.indptr, want.indptr)
            assert np.array_equal(got.indices, want.indices)
            assert np.array_equal(got.data, want.data)

    def test_matches_loop_with_long_rows(self):
        # Rows past numpy's pairwise-summation threshold: bucketed
        # axis-1 reductions must still equal the per-row calls.
        rng = np.random.default_rng(4)
        dense = rng.normal(size=(5, 200))
        matrix = sp.csr_matrix(dense)
        got = row_softmax(matrix)
        want = self._loop_reference(matrix)
        assert np.array_equal(got.data, want.data)
