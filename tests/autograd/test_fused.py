"""Bit-parity of the fused relation-batched kernels vs the legacy
per-relation node graphs (``REPRO_BATCHED_ATTENTION=0``).

Everything here asserts *exact* equality — same bits, not tolerances:
the fused kernels replay the replaced graph's floating-point expression
sequence and gradient arrival order, and the recorded benchmark tables
depend on that staying true.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.optim import Adam, clip_grad_norm
from repro.autograd.rowsparse import GradParts, RowSparseGrad, grad_sum
from repro.baselines import create_model
from repro.components.transr import TransRScorer, transr_loss
from repro.data import load_amazon
from repro.train.trainer import TrainConfig, train_model


@pytest.fixture(scope="module")
def dataset():
    return load_amazon("beauty", size="tiny")


class _Batched:
    """Context manager forcing the fused kernels on or off."""

    def __init__(self, enabled: bool):
        self.enabled = enabled

    def __enter__(self):
        self.prev = os.environ.get("REPRO_BATCHED_ATTENTION")
        os.environ["REPRO_BATCHED_ATTENTION"] = "1" if self.enabled else "0"

    def __exit__(self, *exc):
        if self.prev is None:
            os.environ.pop("REPRO_BATCHED_ATTENTION", None)
        else:
            os.environ["REPRO_BATCHED_ATTENTION"] = self.prev


class TestGradParts:
    def test_parts_fold_sequentially_in_order(self):
        rng = np.random.default_rng(0)
        acc = rng.normal(size=(4, 3))
        p1, p2, p3 = (rng.normal(size=(4, 3)) for _ in range(3))
        folded = grad_sum(acc, GradParts([p1, p2, p3]))
        assert np.array_equal(folded, ((acc + p1) + p2) + p3)

    def test_parts_differ_from_presummed_total(self):
        # The reason GradParts exists: left-fold != fold-of-partial-sums.
        rng = np.random.default_rng(1)
        acc = rng.normal(size=(64, 8)) * 1e10
        p1 = rng.normal(size=(64, 8))
        p2 = rng.normal(size=(64, 8)) * 1e-8
        assert not np.array_equal((acc + p1) + p2, acc + (p1 + p2))

    def test_accumulate_into_leaf(self):
        t = Tensor(np.zeros((3, 2)), requires_grad=True)
        a, b = np.ones((3, 2)), np.full((3, 2), 2.0)
        t._accumulate(GradParts([a, b]))
        assert np.array_equal(t.grad, a + b)

    def test_sparse_parts_keep_representation(self):
        rows = np.array([1, 3])
        values = np.ones((2, 4))
        part = RowSparseGrad(rows, values, (6, 4))
        dense = np.zeros((6, 4))
        out = grad_sum(dense, GradParts([part]))
        expected = np.zeros((6, 4))
        expected[rows] += values
        assert np.array_equal(out, expected)


class TestAttentionParity:
    def _run(self, dataset, batched: bool):
        with _Batched(batched):
            model = create_model("KGAT", dataset, seed=0)
            layer = model.attention_layers[0]
            x = Tensor(np.random.default_rng(1).normal(
                size=(model.ckg.num_nodes, 32)), requires_grad=True)
            out = layer(x)
            out.backward(np.ones_like(out.data))
            return (out.data, x.grad, layer.relation_proj.grad,
                    layer.relation_emb.grad, layer.w_sum.grad,
                    layer.w_prod.grad)

    def test_layer_forward_and_grads_bit_equal(self, dataset):
        fused_out = self._run(dataset, True)
        legacy_out = self._run(dataset, False)
        for got, want in zip(fused_out, legacy_out):
            assert np.array_equal(got, want)

    def test_scratch_pool_recovers_after_unbackwarded_forward(self,
                                                              dataset):
        # An inference forward whose graph is discarded without a
        # backward must not strand the plan's scratch buffers forever.
        with _Batched(True):
            model = create_model("KGAT", dataset, seed=0)
            layer = model.attention_layers[0]
            plan = layer._plan
            x = Tensor(np.random.default_rng(1).normal(
                size=(model.ckg.num_nodes, 32)), requires_grad=True)
            layer(x)                     # never backwarded
            out = layer(x)               # allocates + repools a set
            out.backward(np.ones_like(out.data))
            assert plan._scratch_free    # back in the pool
            pooled = plan._scratch
            out2 = layer(x)
            out2.backward(np.ones_like(out2.data))
            assert plan._scratch is pooled   # reuse resumed

    def test_trained_kgat_bit_equal(self, dataset):
        states = []
        for batched in (True, False):
            with _Batched(batched):
                model = create_model("KGAT", dataset, seed=0)
                train_model(model, dataset,
                            TrainConfig(epochs=2, eval_every=3, seed=0))
                states.append(model.state_dict())
        assert states[0].keys() == states[1].keys()
        for key in states[0]:
            assert np.array_equal(states[0][key], states[1][key]), key

    def test_legacy_split_projection_checkpoint_loads(self, dataset):
        # Checkpoints from before the stacked parameter stored one
        # 'relation_proj[i]' entry per relation; they must keep loading.
        model = create_model("KGAT", dataset, seed=0)
        state = model.state_dict()
        legacy = {}
        for key, value in state.items():
            if key.endswith(".relation_proj") and value.ndim == 3:
                for i in range(value.shape[0]):
                    legacy[f"{key}[{i}]"] = value[i] + 1.0
            else:
                legacy[key] = value
        assert len(legacy) > len(state)
        model.load_state_dict(legacy)
        for key, value in state.items():
            if key.endswith(".relation_proj") and value.ndim == 3:
                loaded = model.named_parameters()[key].data
                assert np.array_equal(loaded, value + 1.0)

    def test_trained_firzen_bit_equal(self, dataset):
        states = []
        losses = []
        for batched in (True, False):
            with _Batched(batched):
                model = create_model("Firzen", dataset, seed=0)
                result = train_model(model, dataset,
                                     TrainConfig(epochs=2, eval_every=3,
                                                 seed=0))
                states.append(model.state_dict())
                losses.append(result.losses)
        assert losses[0] == losses[1]
        for key in states[0]:
            assert np.array_equal(states[0][key], states[1][key]), key


class TestTransRParity:
    def _loss_grads(self, batched: bool, lazy: bool):
        with _Batched(batched):
            rng = np.random.default_rng(5)
            scorer = TransRScorer(4, 8, 8, rng)
            emb = Tensor(np.random.default_rng(7).normal(size=(600, 8)),
                         requires_grad=True)
            optimizer = Adam([emb] + scorer.parameters(), lr=0.01,
                             sparse=lazy)
            sampler = np.random.default_rng(9)
            for _ in range(4):
                heads = sampler.integers(0, 600, 64)
                rels = sampler.integers(0, 4, 64)
                pos = sampler.integers(0, 600, 64)
                neg = sampler.integers(0, 600, 64)
                optimizer.zero_grad()
                loss = transr_loss(scorer, emb, heads, rels, pos, neg)
                loss.backward()
                clip_grad_norm(optimizer.params, 10.0)
                optimizer.step()
            optimizer.release()
            return ([emb.data.copy()]
                    + [w.data.copy() for w in scorer.relation_proj]
                    + [scorer.relation_emb.data.copy()])

    @pytest.mark.parametrize("lazy", [False, True])
    def test_trained_transr_bit_equal(self, lazy):
        fused_state = self._loss_grads(True, lazy)
        legacy_state = self._loss_grads(False, lazy)
        for got, want in zip(fused_state, legacy_state):
            assert np.array_equal(got, want)

    def test_scores_match_input_order(self, dataset):
        # Forward values in input order, both paths.
        with _Batched(True):
            rng = np.random.default_rng(5)
            scorer = TransRScorer(3, 8, 8, rng)
            emb = Tensor(np.random.default_rng(7).normal(size=(40, 8)))
            r = np.random.default_rng(11)
            heads = r.integers(0, 40, 30)
            rels = r.integers(0, 3, 30)
            tails = r.integers(0, 40, 30)
            fused_scores = scorer.score(emb, heads, rels, tails).data
        with _Batched(False):
            legacy_scores = scorer.score(emb, heads, rels, tails).data
        assert np.array_equal(fused_scores, legacy_scores)

    def test_distinct_entity_and_relation_dims(self):
        # entity_dim != relation_dim: the entity gradient is
        # entity_dim wide (regression: the fused backward once sized it
        # with relation_dim and crashed).
        results = []
        for batched in (True, False):
            with _Batched(batched):
                rng = np.random.default_rng(5)
                scorer = TransRScorer(3, entity_dim=8, relation_dim=4,
                                      rng=rng)
                emb = Tensor(np.random.default_rng(7).normal(
                    size=(40, 8)), requires_grad=True)
                r = np.random.default_rng(11)
                loss = transr_loss(scorer, emb,
                                   r.integers(0, 40, 30),
                                   r.integers(0, 3, 30),
                                   r.integers(0, 40, 30),
                                   r.integers(0, 40, 30))
                loss.backward()
                results.append((loss.data.copy(), emb.grad))
        assert np.array_equal(results[0][0], results[1][0])
        assert np.array_equal(results[0][1], results[1][1])

    def test_absent_relations_receive_no_grad(self):
        # Adam skips grad-less parameters; a relation absent from the
        # batch must keep grad None exactly like the historical loop.
        with _Batched(True):
            rng = np.random.default_rng(5)
            scorer = TransRScorer(4, 8, 8, rng)
            emb = Tensor(np.random.default_rng(7).normal(size=(40, 8)),
                         requires_grad=True)
            heads = np.array([0, 1, 2])
            rels = np.array([0, 0, 2])
            tails = np.array([3, 4, 5])
            loss = transr_loss(scorer, emb, heads, rels, pos_tails=tails,
                               neg_tails=tails[::-1].copy())
            loss.backward()
            assert scorer.relation_proj[0].grad is not None
            assert scorer.relation_proj[1].grad is None
            assert scorer.relation_proj[2].grad is not None
            assert scorer.relation_proj[3].grad is None
