"""Property-based tests (hypothesis) on the tensor algebra."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False)
small_matrix = arrays(np.float64, (3, 4), elements=finite)


@settings(max_examples=40, deadline=None)
@given(small_matrix, small_matrix)
def test_addition_commutes(a, b):
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_softmax_rows_sum_to_one(a):
    rows = Tensor(a).softmax(axis=1).data.sum(axis=1)
    np.testing.assert_allclose(rows, np.ones(3), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_softmax_invariant_to_shift(a):
    base = Tensor(a).softmax(axis=1).data
    shifted = Tensor(a + 100.0).softmax(axis=1).data
    np.testing.assert_allclose(base, shifted, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_sigmoid_bounded(a):
    out = Tensor(a * 100).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_normalize_unit_norm(a):
    from hypothesis import assume
    assume(np.all(np.linalg.norm(a, axis=1) > 1e-3))
    norms = np.linalg.norm(Tensor(a).normalize(axis=1).data, axis=1)
    np.testing.assert_allclose(norms, np.ones(3), atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_matrix, small_matrix)
def test_linearity_of_gradient(a, b):
    """grad of sum(a*b) w.r.t. a equals b exactly."""
    ta = Tensor(a, requires_grad=True)
    (ta * Tensor(b)).sum().backward()
    np.testing.assert_allclose(ta.grad, b)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_logsigmoid_matches_log_of_sigmoid(a):
    direct = Tensor(a).logsigmoid().data
    composed = np.log(Tensor(a).sigmoid().data)
    np.testing.assert_allclose(direct, composed, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_matrix)
def test_mean_equals_sum_over_count(a):
    np.testing.assert_allclose(
        Tensor(a).mean(axis=0).data, Tensor(a).sum(axis=0).data / 3.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2))
def test_take_rows_gradient_counts_duplicates(row):
    a = Tensor(np.ones((3, 2)), requires_grad=True)
    a.take_rows([row, row]).sum().backward()
    expected = np.zeros((3, 2))
    expected[row] = 2.0
    np.testing.assert_allclose(a.grad, expected)
