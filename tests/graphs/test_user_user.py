"""Tests for the user-user co-occurrence graph (eq. 4, 19)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.user_user import (UserUserGraph, cooccurrence_counts,
                                    topk_per_row)


@pytest.fixture()
def user_item():
    # users 0,1 share items {0,1}; user 2 shares one item with user 0
    dense = np.array([
        [1, 1, 1, 0],
        [1, 1, 0, 0],
        [0, 0, 1, 1],
    ], dtype=float)
    return sp.csr_matrix(dense)


class TestCooccurrence:
    def test_counts(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        assert co[0, 1] == 2
        assert co[0, 2] == 1
        assert co[1, 2] == 0

    def test_diagonal_zero(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        np.testing.assert_allclose(np.diag(co), 0.0)

    def test_symmetric(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        np.testing.assert_allclose(co, co.T)


class TestTopK:
    def test_keeps_largest(self, user_item):
        co = cooccurrence_counts(user_item)
        top1 = topk_per_row(co, 1).toarray()
        assert top1[0, 1] == 2
        assert top1[0, 2] == 0

    def test_preserves_weights(self, user_item):
        co = cooccurrence_counts(user_item)
        topped = topk_per_row(co, 5).toarray()
        np.testing.assert_allclose(topped, co.toarray())


class TestAttention:
    def test_rows_sum_to_one_when_nonempty(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        att = graph.attention.toarray()
        for row in range(3):
            total = att[row].sum()
            if graph.topk_counts.getrow(row).nnz:
                np.testing.assert_allclose(total, 1.0)

    def test_higher_cooccurrence_gets_more_weight(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        att = graph.attention.toarray()
        assert att[0, 1] > att[0, 2]

    def test_neighbors_of(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        assert set(graph.neighbors_of(0).tolist()) == {1, 2}


class TestTopkVectorizationParity:
    """The length-bucketed batched argpartition must reproduce the
    historical per-row loop *exactly* — including which of several tied
    boundary values survive, since the selection freezes the graph the
    recorded results were trained on."""

    @staticmethod
    def _loop_reference(matrix, top_k):
        matrix = matrix.tocsr()
        rows, cols, vals = [], [], []
        for row in range(matrix.shape[0]):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            if start == end:
                continue
            row_vals = matrix.data[start:end]
            row_cols = matrix.indices[start:end]
            if len(row_vals) > top_k:
                keep = np.argpartition(-row_vals, top_k - 1)[:top_k]
            else:
                keep = np.arange(len(row_vals))
            rows.extend([row] * len(keep))
            cols.extend(row_cols[keep].tolist())
            vals.extend(row_vals[keep].tolist())
        return sp.csr_matrix((vals, (rows, cols)), shape=matrix.shape)

    def _assert_bit_equal(self, got, want):
        got.sum_duplicates()
        want.sum_duplicates()
        assert np.array_equal(got.indptr, want.indptr)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.data, want.data)

    def test_matches_loop_on_tie_heavy_counts(self):
        rng = np.random.default_rng(0)
        for trial in range(8):
            dense = rng.integers(0, 4, size=(37, 37)).astype(float)
            np.fill_diagonal(dense, 0.0)
            matrix = sp.csr_matrix(dense)
            for k in (1, 3, 10):
                self._assert_bit_equal(topk_per_row(matrix, k),
                                       self._loop_reference(matrix, k))

    def test_matches_loop_with_empty_and_short_rows(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = 2.0
        dense[2, :4] = [1.0, 1.0, 1.0, 1.0]
        dense[5, 0] = 3.0
        matrix = sp.csr_matrix(dense)
        self._assert_bit_equal(topk_per_row(matrix, 2),
                               self._loop_reference(matrix, 2))

    def test_matches_loop_on_cooccurrence(self, user_item):
        co = cooccurrence_counts(user_item)
        for k in (1, 2, 5):
            self._assert_bit_equal(topk_per_row(co, k),
                                   self._loop_reference(co, k))


class TestCsrTripleInput:
    def test_counts_match_sparse_matrix_input(self, user_item):
        triple = (user_item.indptr, user_item.indices, user_item.shape)
        got = cooccurrence_counts(triple)
        want = cooccurrence_counts(user_item)
        assert (got != want).nnz == 0

    def test_graph_from_triple_is_bit_identical(self, user_item):
        triple = (user_item.indptr, user_item.indices, user_item.shape)
        a = UserUserGraph(user_item, top_k=2)
        b = UserUserGraph(triple, top_k=2)
        np.testing.assert_array_equal(a.attention.toarray(),
                                      b.attention.toarray())

    def test_mmap_backed_triple(self, user_item, tmp_path):
        np.save(tmp_path / "indptr.npy", user_item.indptr)
        np.save(tmp_path / "indices.npy", user_item.indices)
        triple = (np.load(tmp_path / "indptr.npy", mmap_mode="r"),
                  np.load(tmp_path / "indices.npy", mmap_mode="r"),
                  user_item.shape)
        got = cooccurrence_counts(triple)
        want = cooccurrence_counts(user_item)
        assert (got != want).nnz == 0
