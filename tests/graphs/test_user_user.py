"""Tests for the user-user co-occurrence graph (eq. 4, 19)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.user_user import (UserUserGraph, cooccurrence_counts,
                                    topk_per_row)


@pytest.fixture()
def user_item():
    # users 0,1 share items {0,1}; user 2 shares one item with user 0
    dense = np.array([
        [1, 1, 1, 0],
        [1, 1, 0, 0],
        [0, 0, 1, 1],
    ], dtype=float)
    return sp.csr_matrix(dense)


class TestCooccurrence:
    def test_counts(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        assert co[0, 1] == 2
        assert co[0, 2] == 1
        assert co[1, 2] == 0

    def test_diagonal_zero(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        np.testing.assert_allclose(np.diag(co), 0.0)

    def test_symmetric(self, user_item):
        co = cooccurrence_counts(user_item).toarray()
        np.testing.assert_allclose(co, co.T)


class TestTopK:
    def test_keeps_largest(self, user_item):
        co = cooccurrence_counts(user_item)
        top1 = topk_per_row(co, 1).toarray()
        assert top1[0, 1] == 2
        assert top1[0, 2] == 0

    def test_preserves_weights(self, user_item):
        co = cooccurrence_counts(user_item)
        topped = topk_per_row(co, 5).toarray()
        np.testing.assert_allclose(topped, co.toarray())


class TestAttention:
    def test_rows_sum_to_one_when_nonempty(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        att = graph.attention.toarray()
        for row in range(3):
            total = att[row].sum()
            if graph.topk_counts.getrow(row).nnz:
                np.testing.assert_allclose(total, 1.0)

    def test_higher_cooccurrence_gets_more_weight(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        att = graph.attention.toarray()
        assert att[0, 1] > att[0, 2]

    def test_neighbors_of(self, user_item):
        graph = UserUserGraph(user_item, top_k=2)
        assert set(graph.neighbors_of(0).tolist()) == {1, 2}
