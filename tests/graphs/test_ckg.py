"""Tests for the collaborative knowledge graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.ckg import build_collaborative_kg, sample_kg_negatives


@pytest.fixture(scope="module")
def ckg(tiny_dataset):
    return build_collaborative_kg(
        tiny_dataset.kg, tiny_dataset.split.train, tiny_dataset.num_users)


class TestConstruction:
    def test_node_layout(self, ckg, tiny_dataset):
        assert ckg.num_nodes == (tiny_dataset.kg.num_entities
                                 + tiny_dataset.num_users)
        assert ckg.interact_relation == tiny_dataset.kg.num_relations
        assert ckg.num_relations == tiny_dataset.kg.num_relations + 1

    def test_interact_triplets_both_directions(self, ckg, tiny_dataset):
        interact = ckg.triplets[ckg.triplets[:, 1] == ckg.interact_relation]
        # 2 directions per training interaction
        assert len(interact) == 2 * len(tiny_dataset.split.train)

    def test_user_node_offsets(self, ckg, tiny_dataset):
        nodes = ckg.user_node(np.array([0, 5]))
        np.testing.assert_array_equal(
            nodes, [tiny_dataset.kg.num_entities,
                    tiny_dataset.kg.num_entities + 5])

    def test_kg_triplets_preserved(self, ckg, tiny_dataset):
        non_interact = ckg.triplets[
            ckg.triplets[:, 1] != ckg.interact_relation]
        assert len(non_interact) == tiny_dataset.kg.num_triplets

    def test_cold_items_reachable_via_kg(self, ckg, tiny_dataset):
        """The property Firzen's cold path depends on: strict cold items
        are connected in the CKG even without interactions."""
        cold = set(tiny_dataset.split.cold_items.tolist())
        heads = set(ckg.triplets[:, 0].tolist())
        assert cold <= heads

    def test_unidirectional_option(self, tiny_dataset):
        uni = build_collaborative_kg(
            tiny_dataset.kg, tiny_dataset.split.train,
            tiny_dataset.num_users, bidirectional=False)
        interact = uni.triplets[uni.triplets[:, 1] == uni.interact_relation]
        assert len(interact) == len(tiny_dataset.split.train)

    def test_head_index_shape(self, ckg):
        index = ckg.head_index()
        assert index.shape == (ckg.num_nodes, len(ckg.triplets))


class TestNegativeSampling:
    def test_shapes_and_ranges(self, tiny_dataset, rng):
        heads, relations, pos, neg = sample_kg_negatives(
            tiny_dataset.kg, 64, rng)
        for arr in (heads, relations, pos, neg):
            assert len(arr) == 64
        assert neg.max() < tiny_dataset.kg.num_entities

    def test_positives_are_real_triplets(self, tiny_dataset, rng):
        heads, relations, pos, _ = sample_kg_negatives(
            tiny_dataset.kg, 32, rng)
        existing = tiny_dataset.kg.triplet_set()
        for h, r, t in zip(heads, relations, pos):
            assert (int(h), int(r), int(t)) in existing

    def test_negatives_mostly_corrupted(self, tiny_dataset, rng):
        heads, relations, _, neg = sample_kg_negatives(
            tiny_dataset.kg, 128, rng)
        existing = tiny_dataset.kg.triplet_set()
        bad = sum((int(h), int(r), int(t)) in existing
                  for h, r, t in zip(heads, relations, neg))
        assert bad / 128 < 0.1

    def test_empty_kg_raises(self, tiny_dataset, rng):
        empty = tiny_dataset.kg.with_triplets(
            np.empty((0, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            sample_kg_negatives(empty, 4, rng)
