"""Property-based tests on the frozen graph constructions."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.sparse import symmetric_normalize
from repro.graphs.item_item import (cold_mask_matrix,
                                    cosine_similarity_matrix, knn_sparsify)
from repro.graphs.user_user import cooccurrence_counts, topk_per_row


@st.composite
def feature_matrix(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    d = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10000))
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d))


@settings(max_examples=30, deadline=None)
@given(feature_matrix(), st.integers(min_value=1, max_value=5))
def test_knn_degree_bound(features, k):
    adjacency = knn_sparsify(cosine_similarity_matrix(features), k)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    assert degrees.max() <= min(k, len(features) - 1)
    assert adjacency.diagonal().sum() == 0


@settings(max_examples=30, deadline=None)
@given(feature_matrix())
def test_cosine_symmetric_and_bounded(features):
    sims = cosine_similarity_matrix(features)
    np.testing.assert_allclose(sims, sims.T, atol=1e-10)
    assert np.all(sims <= 1.0 + 1e-9)
    assert np.all(sims >= -1.0 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(feature_matrix(), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=3))
def test_cold_mask_invariant(features, k, num_cold):
    n = len(features)
    num_cold = min(num_cold, n - 2)
    is_cold = np.zeros(n, dtype=bool)
    is_cold[-num_cold:] = True
    adjacency = knn_sparsify(cosine_similarity_matrix(features), k)
    masked = cold_mask_matrix(adjacency, is_cold).toarray()
    # No warm row may keep any cold column.
    assert masked[~is_cold][:, is_cold].sum() == 0
    # Entries never increase.
    assert np.all(masked <= adjacency.toarray() + 1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=1, max_value=5))
def test_cooccurrence_topk_subset(seed, k):
    rng = np.random.default_rng(seed)
    dense = (rng.random((8, 12)) > 0.6).astype(float)
    co = cooccurrence_counts(sp.csr_matrix(dense))
    topped = topk_per_row(co, k)
    # Every kept entry exists in the full matrix with the same weight.
    full = co.toarray()
    kept = topped.toarray()
    mask = kept > 0
    np.testing.assert_allclose(kept[mask], full[mask])
    # Row degree bound.
    assert (kept > 0).sum(axis=1).max() <= k


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_symmetric_normalize_spectrum_bounded(seed):
    """Spectral radius of D^-1/2 A D^-1/2 is at most 1 for any graph."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((10, 10)) > 0.6).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0)
    norm = symmetric_normalize(sp.csr_matrix(dense)).toarray()
    eigenvalues = np.linalg.eigvalsh((norm + norm.T) / 2)
    assert eigenvalues.max() <= 1.0 + 1e-8
