"""Tests for the frozen interaction graph."""

from __future__ import annotations

import numpy as np

from repro.graphs.interaction import InteractionGraph


def _graph():
    inter = np.array([[0, 0], [0, 1], [1, 1], [2, 2]])
    return InteractionGraph(3, 3, inter)


class TestStructure:
    def test_degrees(self):
        g = _graph()
        np.testing.assert_array_equal(g.user_degree(), [2, 1, 1])
        np.testing.assert_array_equal(g.item_degree(), [1, 2, 1])

    def test_adjacency_symmetric_bipartite(self):
        g = _graph()
        dense = g.adjacency.toarray()
        np.testing.assert_allclose(dense, dense.T)
        assert dense[:3, :3].sum() == 0

    def test_norm_adjacency_entries(self):
        """Each entry must be 1/sqrt(deg_i * deg_j)."""
        g = _graph()
        dense = g.norm_adjacency.toarray()
        degrees = np.asarray(g.adjacency.sum(axis=1)).ravel()
        coo = g.adjacency.tocoo()
        for i, j in zip(coo.row, coo.col):
            expected = 1.0 / np.sqrt(degrees[i] * degrees[j])
            np.testing.assert_allclose(dense[i, j], expected)

    def test_cold_item_isolated(self, tiny_dataset):
        g = InteractionGraph(tiny_dataset.num_users, tiny_dataset.num_items,
                             tiny_dataset.split.train)
        cold = tiny_dataset.split.cold_items
        degrees = g.item_degree()
        np.testing.assert_allclose(degrees[cold], 0.0)

    def test_neighbors(self):
        g = _graph()
        np.testing.assert_array_equal(g.neighbors_of_user(0), [0, 1])
        np.testing.assert_array_equal(g.neighbors_of_item(1), [0, 1])


class TestExtension:
    def test_with_extra_interactions(self):
        g = _graph()
        extended = g.with_extra_interactions(np.array([[2, 0]]))
        assert extended.user_item_matrix[2, 0] == 1
        assert g.user_item_matrix[2, 0] == 0  # original untouched

    def test_extra_interactions_dedupe(self):
        g = _graph()
        extended = g.with_extra_interactions(np.array([[0, 0]]))
        assert len(extended.interactions) == len(g.interactions)


class TestFromCsr:
    def test_matches_coo_construction(self, tiny_dataset):
        import scipy.sparse as sp
        inter = tiny_dataset.split.train
        direct = InteractionGraph(tiny_dataset.num_users,
                                  tiny_dataset.num_items, inter)
        csr = sp.csr_matrix(
            (np.ones(len(inter)), (inter[:, 0], inter[:, 1])),
            shape=(tiny_dataset.num_users, tiny_dataset.num_items))
        rebuilt = InteractionGraph.from_csr(
            tiny_dataset.num_users, tiny_dataset.num_items,
            csr.indptr, csr.indices)
        assert (rebuilt.user_item_matrix != direct.user_item_matrix).nnz \
            == 0
        np.testing.assert_array_equal(
            rebuilt.norm_adjacency.toarray(),
            direct.norm_adjacency.toarray())

    def test_interactions_attribute_round_trips(self):
        """Downstream models read ``.interactions`` directly (SGL's
        edge dropout, FREEDOM sampling) — from_csr must reconstruct it
        in row-major order."""
        import scipy.sparse as sp
        inter = np.array([[0, 0], [0, 2], [1, 1], [2, 0], [2, 2]])
        csr = sp.csr_matrix(
            (np.ones(len(inter)), (inter[:, 0], inter[:, 1])),
            shape=(3, 3))
        g = InteractionGraph.from_csr(3, 3, csr.indptr, csr.indices)
        np.testing.assert_array_equal(g.interactions, inter)
