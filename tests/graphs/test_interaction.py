"""Tests for the frozen interaction graph."""

from __future__ import annotations

import numpy as np

from repro.graphs.interaction import InteractionGraph


def _graph():
    inter = np.array([[0, 0], [0, 1], [1, 1], [2, 2]])
    return InteractionGraph(3, 3, inter)


class TestStructure:
    def test_degrees(self):
        g = _graph()
        np.testing.assert_array_equal(g.user_degree(), [2, 1, 1])
        np.testing.assert_array_equal(g.item_degree(), [1, 2, 1])

    def test_adjacency_symmetric_bipartite(self):
        g = _graph()
        dense = g.adjacency.toarray()
        np.testing.assert_allclose(dense, dense.T)
        assert dense[:3, :3].sum() == 0

    def test_norm_adjacency_entries(self):
        """Each entry must be 1/sqrt(deg_i * deg_j)."""
        g = _graph()
        dense = g.norm_adjacency.toarray()
        degrees = np.asarray(g.adjacency.sum(axis=1)).ravel()
        coo = g.adjacency.tocoo()
        for i, j in zip(coo.row, coo.col):
            expected = 1.0 / np.sqrt(degrees[i] * degrees[j])
            np.testing.assert_allclose(dense[i, j], expected)

    def test_cold_item_isolated(self, tiny_dataset):
        g = InteractionGraph(tiny_dataset.num_users, tiny_dataset.num_items,
                             tiny_dataset.split.train)
        cold = tiny_dataset.split.cold_items
        degrees = g.item_degree()
        np.testing.assert_allclose(degrees[cold], 0.0)

    def test_neighbors(self):
        g = _graph()
        np.testing.assert_array_equal(g.neighbors_of_user(0), [0, 1])
        np.testing.assert_array_equal(g.neighbors_of_item(1), [0, 1])


class TestExtension:
    def test_with_extra_interactions(self):
        g = _graph()
        extended = g.with_extra_interactions(np.array([[2, 0]]))
        assert extended.user_item_matrix[2, 0] == 1
        assert g.user_item_matrix[2, 0] == 0  # original untouched

    def test_extra_interactions_dedupe(self):
        g = _graph()
        extended = g.with_extra_interactions(np.array([[0, 0]]))
        assert len(extended.interactions) == len(g.interactions)
