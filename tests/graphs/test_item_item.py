"""Tests for the modality-specific item-item graphs (eq. 1-3, 34-35)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.item_item import (ItemItemGraph, cold_mask_matrix,
                                    cosine_similarity_matrix, knn_sparsify)


@pytest.fixture()
def features(rng):
    # two clear clusters of 5 items each
    a = rng.normal(size=(5, 8)) * 0.1 + np.array([1.0] + [0.0] * 7)
    b = rng.normal(size=(5, 8)) * 0.1 + np.array([0.0, 1.0] + [0.0] * 6)
    return np.concatenate([a, b])


class TestSimilarity:
    def test_diagonal_is_one(self, features):
        sims = cosine_similarity_matrix(features)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_within_cluster_higher(self, features):
        sims = cosine_similarity_matrix(features)
        assert sims[0, 1] > sims[0, 6]

    def test_zero_rows_safe(self):
        feats = np.zeros((3, 4))
        feats[0] = 1.0
        sims = cosine_similarity_matrix(feats)
        assert np.all(np.isfinite(sims))


class TestKnn:
    def test_row_degree_bounded(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert degrees.max() <= 3

    def test_no_self_loops(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        assert adjacency.diagonal().sum() == 0

    def test_neighbors_from_same_cluster(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        row = adjacency.getrow(0).indices
        assert all(n < 5 for n in row)

    def test_restrict_to_excludes_outsiders(self, features):
        warm = np.arange(5)
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3,
                                 restrict_to=warm)
        coo = adjacency.tocoo()
        assert coo.row.max() < 5 and coo.col.max() < 5

    def test_k_larger_than_candidates(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 100)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert degrees.max() <= 9  # n-1


class TestColdMask:
    def test_blocks_cold_to_warm_only(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 9)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        masked = cold_mask_matrix(adjacency, is_cold).toarray()
        full = adjacency.toarray()
        # warm rows must not aggregate from cold columns
        assert masked[:7, 7:].sum() == 0
        # cold rows may aggregate from warm columns
        assert masked[7:, :7].sum() == full[7:, :7].sum()
        # warm-warm untouched
        np.testing.assert_array_equal(masked[:7, :7], full[:7, :7])


class TestItemItemGraph:
    def test_train_view_excludes_cold(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        train = graph.adjacency("train").toarray()
        assert train[7:, :].sum() == 0 and train[:, 7:].sum() == 0

    def test_infer_view_gives_cold_items_edges(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        infer = graph.adjacency("infer").toarray()
        assert infer[7:, :].sum() > 0          # cold rows receive
        assert infer[:7, 7:].sum() == 0        # warm rows never from cold

    def test_unmasked_view_keeps_cold_to_warm(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        unmasked = graph.adjacency("infer", masked=False).toarray()
        masked = graph.adjacency("infer", masked=True).toarray()
        assert unmasked[:7, 7:].sum() >= masked[:7, 7:].sum()

    def test_unknown_mode_raises(self, features):
        graph = ItemItemGraph("text", features, 3, np.arange(7),
                              np.zeros(10, dtype=bool))
        with pytest.raises(ValueError):
            graph.adjacency("test")


class TestBlockedKnn:
    """The blocked builder selects the same neighbor sets as the dense
    path on fixtures without exact similarity ties at the cut boundary
    (panel GEMMs are not ulp-identical to one full GEMM)."""

    def _separated_features(self, rng, n=40, dim=8, clusters=4):
        centers = np.eye(clusters, dim) * 4.0
        return (centers[np.arange(n) % clusters]
                + rng.normal(size=(n, dim)) * 0.05)

    def test_matches_dense_path(self, rng):
        from repro.graphs.item_item import knn_sparsify_blocked
        feats = self._separated_features(rng)
        dense = knn_sparsify(cosine_similarity_matrix(feats), 3)
        for block_rows in (1, 7, 2048):
            blocked = knn_sparsify_blocked(feats, 3,
                                           block_rows=block_rows)
            assert (blocked != dense).nnz == 0

    def test_matches_dense_path_with_restrict_to(self, rng):
        from repro.graphs.item_item import knn_sparsify_blocked
        feats = self._separated_features(rng)
        warm = np.arange(0, 40, 2)
        dense = knn_sparsify(cosine_similarity_matrix(feats), 3,
                             restrict_to=warm)
        blocked = knn_sparsify_blocked(feats, 3, restrict_to=warm,
                                       block_rows=11)
        assert (blocked != dense).nnz == 0

    def test_graph_views_match_across_the_toggle(self, rng):
        feats = self._separated_features(rng)
        warm = np.arange(30)
        is_cold = np.zeros(40, dtype=bool)
        is_cold[30:] = True
        legacy = ItemItemGraph("text", feats, 3, warm, is_cold,
                               blocked=False)
        blocked = ItemItemGraph("text", feats, 3, warm, is_cold,
                                blocked=True)
        for mode in ("train", "infer"):
            np.testing.assert_array_equal(
                blocked.adjacency(mode).toarray(),
                legacy.adjacency(mode).toarray())

    def test_memmap_features_auto_route(self, rng, tmp_path):
        feats = self._separated_features(rng)
        np.save(tmp_path / "feats.npy", feats)
        mapped = np.load(tmp_path / "feats.npy", mmap_mode="r")
        warm = np.arange(30)
        is_cold = np.zeros(40, dtype=bool)
        is_cold[30:] = True
        from_map = ItemItemGraph("text", mapped, 3, warm, is_cold)
        legacy = ItemItemGraph("text", feats, 3, warm, is_cold,
                               blocked=False)
        np.testing.assert_array_equal(
            from_map.adjacency("infer").toarray(),
            legacy.adjacency("infer").toarray())
