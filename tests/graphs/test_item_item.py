"""Tests for the modality-specific item-item graphs (eq. 1-3, 34-35)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.item_item import (ItemItemGraph, cold_mask_matrix,
                                    cosine_similarity_matrix, knn_sparsify)


@pytest.fixture()
def features(rng):
    # two clear clusters of 5 items each
    a = rng.normal(size=(5, 8)) * 0.1 + np.array([1.0] + [0.0] * 7)
    b = rng.normal(size=(5, 8)) * 0.1 + np.array([0.0, 1.0] + [0.0] * 6)
    return np.concatenate([a, b])


class TestSimilarity:
    def test_diagonal_is_one(self, features):
        sims = cosine_similarity_matrix(features)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_within_cluster_higher(self, features):
        sims = cosine_similarity_matrix(features)
        assert sims[0, 1] > sims[0, 6]

    def test_zero_rows_safe(self):
        feats = np.zeros((3, 4))
        feats[0] = 1.0
        sims = cosine_similarity_matrix(feats)
        assert np.all(np.isfinite(sims))


class TestKnn:
    def test_row_degree_bounded(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert degrees.max() <= 3

    def test_no_self_loops(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        assert adjacency.diagonal().sum() == 0

    def test_neighbors_from_same_cluster(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3)
        row = adjacency.getrow(0).indices
        assert all(n < 5 for n in row)

    def test_restrict_to_excludes_outsiders(self, features):
        warm = np.arange(5)
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 3,
                                 restrict_to=warm)
        coo = adjacency.tocoo()
        assert coo.row.max() < 5 and coo.col.max() < 5

    def test_k_larger_than_candidates(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 100)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert degrees.max() <= 9  # n-1


class TestColdMask:
    def test_blocks_cold_to_warm_only(self, features):
        adjacency = knn_sparsify(cosine_similarity_matrix(features), 9)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        masked = cold_mask_matrix(adjacency, is_cold).toarray()
        full = adjacency.toarray()
        # warm rows must not aggregate from cold columns
        assert masked[:7, 7:].sum() == 0
        # cold rows may aggregate from warm columns
        assert masked[7:, :7].sum() == full[7:, :7].sum()
        # warm-warm untouched
        np.testing.assert_array_equal(masked[:7, :7], full[:7, :7])


class TestItemItemGraph:
    def test_train_view_excludes_cold(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        train = graph.adjacency("train").toarray()
        assert train[7:, :].sum() == 0 and train[:, 7:].sum() == 0

    def test_infer_view_gives_cold_items_edges(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        infer = graph.adjacency("infer").toarray()
        assert infer[7:, :].sum() > 0          # cold rows receive
        assert infer[:7, 7:].sum() == 0        # warm rows never from cold

    def test_unmasked_view_keeps_cold_to_warm(self, features):
        warm = np.arange(7)
        is_cold = np.zeros(10, dtype=bool)
        is_cold[7:] = True
        graph = ItemItemGraph("text", features, 3, warm, is_cold)
        unmasked = graph.adjacency("infer", masked=False).toarray()
        masked = graph.adjacency("infer", masked=True).toarray()
        assert unmasked[:7, 7:].sum() >= masked[:7, 7:].sum()

    def test_unknown_mode_raises(self, features):
        graph = ItemItemGraph("text", features, 3, np.arange(7),
                              np.zeros(10, dtype=bool))
        with pytest.raises(ValueError):
            graph.adjacency("test")
