"""Documentation consistency: the front door must track the code.

Mirrors ``tools/check_docs.py`` so drift fails the tier-1 suite, plus a
few content checks the script doesn't enforce.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.baselines import available_models
from repro.cli import build_parser

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme() -> str:
    return (ROOT / "README.md").read_text()


def subcommands() -> list[str]:
    import argparse
    parser = build_parser()
    subparsers = [action for action in parser._actions
                  if isinstance(action, argparse._SubParsersAction)]
    return sorted(subparsers[0].choices)


class TestReadme:
    def test_every_cli_subcommand_documented(self, readme):
        for command in subcommands():
            assert f"`{command}`" in readme, (
                f"README.md must document the {command!r} subcommand")

    def test_all_sixteen_models_in_registry_table(self, readme):
        for name in available_models():
            assert re.search(rf"\|\s*\*{{0,2}}{re.escape(name)}\*{{0,2}}\s*\|",
                             readme), f"{name} missing from registry table"

    def test_capability_flags_match_code(self, readme):
        from repro.baselines import create_model  # noqa: F401 (import check)
        from repro.baselines.registry import MODEL_FAMILIES
        for name, (cls, family) in MODEL_FAMILIES.items():
            row = re.search(rf"\|\s*\*{{0,2}}{re.escape(name)}\*{{0,2}}\s*\|"
                            r"([^\n]*)", readme)
            assert row, name
            cells = [cell.strip() for cell in row.group(1).split("|")]
            assert cells[0] == family, f"{name}: family drifted"
            assert (cells[1] == "✓") == cls.uses_kg, f"{name}: uses_kg"
            assert (cells[2] == "✓") == cls.uses_modalities, \
                f"{name}: uses_modalities"

    def test_benchmark_harnesses_listed(self, readme):
        for harness in sorted(
                p.name for p in (ROOT / "benchmarks").glob("test_*.py")):
            assert harness in readme, f"{harness} missing from README"


class TestDocsTree:
    def test_architecture_and_reproducing_exist(self):
        assert (ROOT / "docs" / "ARCHITECTURE.md").exists()
        assert (ROOT / "docs" / "REPRODUCING.md").exists()

    def test_reproducing_covers_every_results_file(self):
        text = (ROOT / "docs" / "REPRODUCING.md").read_text()
        for result in sorted(p.name for p in (ROOT / "results").glob("*.txt")):
            assert result in text, (
                f"docs/REPRODUCING.md must mention results/{result}")

    def test_check_docs_script_passes(self):
        import os
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "check_docs.py")],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
