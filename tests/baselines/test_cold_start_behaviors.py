"""Behavioral contracts: how each model family treats strict cold items.

These encode the paper's *mechanistic* claims: ID-based CF models cannot
rank cold items (their representations stay at initialization), while
content/KG models produce informed cold representations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.components.lightgcn import lightgcn_propagate
from repro.graphs.interaction import InteractionGraph
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=3, eval_every=3, batch_size=128,
                    learning_rate=0.05)


class TestLightGCNColdProperty:
    def test_cold_items_keep_scaled_initialization(self, tiny_dataset):
        """An isolated item's propagated embedding is e0/(L+1) — the
        'zero behavioral signal' property from paper section III-C.1."""
        model = create_model("LightGCN", tiny_dataset, embedding_dim=16,
                             seed=0)
        user_out, item_out = model.propagate()
        cold = tiny_dataset.split.cold_items
        expected = model.item_emb.weight.data[cold] / (model.num_layers + 1)
        np.testing.assert_allclose(item_out.data[cold], expected, atol=1e-10)

    def test_warm_items_mix_neighbors(self, tiny_dataset):
        model = create_model("LightGCN", tiny_dataset, embedding_dim=16,
                             seed=0)
        _, item_out = model.propagate()
        warm = tiny_dataset.split.warm_items
        scaled_init = model.item_emb.weight.data[warm] / 3
        assert not np.allclose(item_out.data[warm], scaled_init)


class TestContentModelsColdInformed:
    @pytest.mark.parametrize("name", ["VBPR", "CLCRec", "DropoutNet"])
    def test_cold_representations_differ_from_random(self, tiny_dataset,
                                                     name):
        """Content-based cold representations must depend on features:
        two items with similar features get similar cold embeddings."""
        model = create_model(name, tiny_dataset, embedding_dim=16, seed=0)
        train_model(model, tiny_dataset, QUICK)
        items = model.item_matrix()
        cold = tiny_dataset.split.cold_items
        clusters = tiny_dataset.world.item_clusters[cold]
        emb = items[cold]
        emb = emb / np.maximum(
            np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
        sims = emb @ emb.T
        same = clusters[:, None] == clusters[None, :]
        np.fill_diagonal(same, False)
        off = ~np.eye(len(cold), dtype=bool)
        if same.any() and (~same & off).any():
            assert sims[same].mean() > sims[~same & off].mean()


class TestKGModelsColdConnected:
    def test_kgat_cold_scores_not_constant(self, tiny_dataset):
        model = create_model("KGAT", tiny_dataset, embedding_dim=16, seed=0)
        train_model(model, tiny_dataset, QUICK)
        cold = tiny_dataset.split.cold_items
        scores = model.score_users(np.arange(5))[:, cold]
        assert scores.std() > 0


class TestDragonHasNoColdMechanism:
    def test_cold_homogeneous_half_is_empty(self, tiny_dataset):
        model = create_model("DRAGON", tiny_dataset, embedding_dim=16,
                             seed=0)
        items = model.item_matrix()
        cold = tiny_dataset.split.cold_items
        dim = model.embedding_dim
        # second half of the concatenated representation = homogeneous part
        np.testing.assert_allclose(items[cold, dim:], 0.0, atol=1e-12)


class TestMMSSLColdModalityZero:
    def test_modal_item_part_zero_for_cold(self, tiny_dataset):
        model = create_model("MMSSL", tiny_dataset, embedding_dim=16, seed=0)
        x_user, x_item = model._modal_user_item("text")
        cold = tiny_dataset.split.cold_items
        np.testing.assert_allclose(x_item.data[cold], 0.0, atol=1e-12)


class TestSharedPropagation:
    def test_lightgcn_propagate_matches_manual(self, rng):
        from repro.autograd import Tensor
        inter = np.array([[0, 0], [1, 1]])
        graph = InteractionGraph(2, 2, inter)
        u = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        i = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        user_out, item_out = lightgcn_propagate(
            graph.norm_adjacency, u, i, num_layers=1)
        # degree 1 everywhere -> one hop swaps user/item embeddings
        np.testing.assert_allclose(
            user_out.data, (u.data + i.data) / 2, atol=1e-12)
        np.testing.assert_allclose(
            item_out.data, (i.data + u.data) / 2, atol=1e-12)
