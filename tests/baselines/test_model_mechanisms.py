"""Per-model mechanism tests: each baseline's defining component works.

The smoke tests prove the models run; these prove each model is the
model it claims to be.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines import create_model

USERS = np.array([0, 1, 2, 3])
POS = np.array([0, 1, 2, 3])
NEG = np.array([4, 5, 6, 7])


def _warm_batch(dataset):
    """A batch whose items are guaranteed warm."""
    warm = dataset.split.warm_items
    return USERS, warm[:4], warm[4:8]


class TestSGL:
    def test_ssl_term_changes_loss(self, tiny_dataset):
        users, pos, neg = _warm_batch(tiny_dataset)
        with_ssl = create_model("SGL", tiny_dataset, embedding_dim=16,
                                seed=0, ssl_weight=0.5)
        without = create_model("SGL", tiny_dataset, embedding_dim=16,
                               seed=0, ssl_weight=0.0)
        assert with_ssl.loss(users, pos, neg).item() \
            != pytest.approx(without.loss(users, pos, neg).item())

    def test_augmentation_drops_edges(self, tiny_dataset):
        model = create_model("SGL", tiny_dataset, embedding_dim=16, seed=0,
                             edge_dropout=0.5)
        full_edges = model.graph.norm_adjacency.nnz
        augmented = model._augmented_adjacency().nnz
        assert augmented < full_edges


class TestSimpleX:
    def test_scoring_is_cosine(self, tiny_dataset):
        model = create_model("SimpleX", tiny_dataset, embedding_dim=16,
                             seed=0)
        scores = model.score_users(np.arange(5))
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_user_repr_mixes_history(self, tiny_dataset):
        model = create_model("SimpleX", tiny_dataset, embedding_dim=16,
                             seed=0, gamma=0.0)
        user_repr = model._user_repr().data
        # With gamma=0 the representation is purely aggregated items, so
        # two users with identical histories would coincide; at least it
        # must differ from the raw ID embeddings.
        assert not np.allclose(user_repr, model.user_emb.weight.data)


class TestVBPR:
    def test_uses_visual_modality_only(self, tiny_dataset):
        model = create_model("VBPR", tiny_dataset, embedding_dim=16, seed=0)
        assert model.features.shape[1] \
            == tiny_dataset.feature_dim("image")

    def test_content_half_informs_cold(self, tiny_dataset):
        model = create_model("VBPR", tiny_dataset, embedding_dim=16, seed=0)
        _, items = model.compute_representations()
        cold = tiny_dataset.split.cold_items
        # Cold items' content half (second block) is nonzero.
        assert np.abs(items[cold, 16:]).sum() > 0


class TestKGAT:
    def test_layer_outputs_concatenated(self, tiny_dataset):
        model = create_model("KGAT", tiny_dataset, embedding_dim=16, seed=0,
                             num_layers=2)
        users, items = model.compute_representations()
        # (L+1) * dim concatenation
        assert users.shape[1] == 16 * 3
        assert items.shape[1] == 16 * 3

    def test_kg_optimizer_moves_transr(self, tiny_dataset):
        model = create_model("KGAT", tiny_dataset, embedding_dim=16, seed=0,
                             kg_batches=1, kg_batch_size=64)
        before = model.transr.relation_emb.data.copy()
        model.extra_step()
        assert not np.allclose(before, model.transr.relation_emb.data)


class TestKGCN:
    def test_neighborhood_sampled(self, tiny_dataset):
        model = create_model("KGCN", tiny_dataset, embedding_dim=16, seed=0,
                             neighbor_sample_size=4)
        total_per_item = None
        for matrix in model._relation_matrices:
            nnz_per_row = np.diff(matrix.tocsr().indptr)
            total_per_item = nnz_per_row if total_per_item is None \
                else total_per_item + nnz_per_row
        assert total_per_item.max() <= 4

    def test_user_relation_weights_are_distribution(self, tiny_dataset):
        model = create_model("KGCN", tiny_dataset, embedding_dim=16, seed=0)
        weights = model._user_relation_weights(USERS).data
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-9)


class TestKGNNLS:
    def test_smoothness_term_positive(self, tiny_dataset):
        model = create_model("KGNNLS", tiny_dataset, embedding_dim=16,
                             seed=0)
        assert model._label_smoothness().item() >= 0.0

    def test_smoothing_graph_warm_only(self, tiny_dataset):
        model = create_model("KGNNLS", tiny_dataset, embedding_dim=16,
                             seed=0)
        cold = tiny_dataset.split.is_cold
        coo = model._smooth.tocoo()
        assert not np.any(cold[coo.row])
        assert not np.any(cold[coo.col])


class TestMKGAT:
    def test_modality_nodes_added(self, tiny_dataset):
        model = create_model("MKGAT", tiny_dataset, embedding_dim=16,
                             seed=0)
        base = tiny_dataset.kg
        expected = base.num_entities + 2 * tiny_dataset.num_items
        assert model.extended_kg.num_entities == expected
        assert model.extended_kg.num_relations == base.num_relations + 2

    def test_node_matrix_uses_projected_features(self, tiny_dataset):
        model = create_model("MKGAT", tiny_dataset, embedding_dim=16,
                             seed=0)
        nodes = model._node_matrix()
        assert nodes.shape == (model.ckg.num_nodes, 16)


class TestBM3:
    def test_bootstrap_target_detached(self, tiny_dataset):
        """The alignment target must not receive gradients."""
        model = create_model("BM3", tiny_dataset, embedding_dim=16, seed=0)
        users, pos, neg = _warm_batch(tiny_dataset)
        loss = model.loss(users, pos, neg)
        loss.backward()
        # Gradients exist on the predictor (online side).
        assert model.predictor.weight.grad is not None


class TestDropoutNet:
    def test_inference_drops_cold_behavior(self, tiny_dataset):
        model = create_model("DropoutNet", tiny_dataset, embedding_dim=16,
                             seed=0)
        model.eval()
        users, items = model._forward(training=False)
        assert np.isfinite(items.data).all()

    def test_training_uses_random_dropout(self, tiny_dataset):
        model = create_model("DropoutNet", tiny_dataset, embedding_dim=16,
                             seed=0, dropout_rate=0.99)
        a = model._forward(training=True)[1].data
        b = model._forward(training=True)[1].data
        assert not np.allclose(a, b)


class TestMMSSL:
    def test_discriminator_present_and_scores(self, tiny_dataset, rng):
        model = create_model("MMSSL", tiny_dataset, embedding_dim=16,
                             seed=0)
        rows = Tensor(rng.normal(size=(4, tiny_dataset.num_items)))
        out = model.discriminator(rows)
        assert np.all((out.data >= 0) & (out.data <= 1))


class TestCKE:
    def test_item_repr_sums_id_and_entity(self, tiny_dataset):
        model = create_model("CKE", tiny_dataset, embedding_dim=16, seed=0)
        _, items = model.compute_representations()
        expected = model.item_emb.weight.data \
            + model.entity_emb.weight.data[:tiny_dataset.num_items]
        np.testing.assert_allclose(items, expected)
