"""Smoke tests: every registered model constructs, trains, and scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (MODEL_FAMILIES, available_models, create_model,
                             model_family)
from repro.eval import evaluate_model
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=2, eval_every=2, batch_size=128,
                    learning_rate=0.05)


@pytest.mark.parametrize("name", available_models())
class TestEveryModel:
    def test_train_and_score(self, tiny_dataset, name):
        model = create_model(name, tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, QUICK)
        assert np.isfinite(result.losses).all()

        scores = model.score_users(np.array([0, 1, 2]))
        assert scores.shape == (3, tiny_dataset.num_items)
        assert np.isfinite(scores).all()

        bundle = evaluate_model(model, tiny_dataset.split, k=10)
        for metrics in (bundle.cold, bundle.warm):
            assert 0.0 <= metrics.recall <= 1.0

    def test_item_embeddings_available(self, tiny_dataset, name):
        model = create_model(name, tiny_dataset, embedding_dim=16, seed=0)
        emb = model.item_embeddings()
        assert emb.shape[0] == tiny_dataset.num_items
        assert np.isfinite(emb).all()


class TestRegistry:
    def test_fifteen_baselines(self):
        assert len(MODEL_FAMILIES) == 15

    def test_firzen_included(self):
        assert "Firzen" in available_models()
        assert "Firzen" not in available_models(include_firzen=False)

    def test_families(self):
        assert model_family("BPR") == "CF"
        assert model_family("KGAT") == "KG"
        assert model_family("VBPR") == "MM"
        assert model_family("DropoutNet") == "CS"
        assert model_family("MKGAT") == "MM+KG"
        assert model_family("Firzen") == "MM+KG"

    def test_unknown_model_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            create_model("DeepFM", tiny_dataset)

    def test_family_flags(self, tiny_dataset):
        vbpr = create_model("VBPR", tiny_dataset, embedding_dim=8)
        kgat = create_model("KGAT", tiny_dataset, embedding_dim=8)
        assert vbpr.uses_modalities and not vbpr.uses_kg
        assert kgat.uses_kg and not kgat.uses_modalities
