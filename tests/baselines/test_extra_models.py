"""Tests for the extra models beyond the paper's roster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.eval import evaluate_model, evaluate_scenario
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=2, eval_every=2, batch_size=128,
                    learning_rate=0.05)


class TestRandom:
    def test_chance_level_cold(self, small_dataset):
        model = create_model("Random", small_dataset, seed=0)
        result = evaluate_scenario(model, small_dataset.split, "cold_test",
                                   k=10)
        # chance recall ~= k / |cold candidates|
        chance = 10 / len(small_dataset.split.cold_items)
        assert 0.3 * chance < result.recall < 3.0 * chance

    def test_trainable_noop(self, tiny_dataset):
        model = create_model("Random", tiny_dataset, seed=0)
        before = model.score_users(np.arange(3)).copy()
        train_model(model, tiny_dataset, QUICK)
        np.testing.assert_allclose(model.score_users(np.arange(3)), before)


class TestMostPopular:
    def test_ranks_by_popularity(self, tiny_dataset):
        model = create_model("MostPopular", tiny_dataset, seed=0)
        scores = model.score_users(np.array([0]))[0]
        counts = np.zeros(tiny_dataset.num_items)
        items, freq = np.unique(tiny_dataset.split.train[:, 1],
                                return_counts=True)
        counts[items] = freq
        top_scored = int(np.argmax(scores))
        assert counts[top_scored] == counts.max()

    def test_identical_for_all_users(self, tiny_dataset):
        model = create_model("MostPopular", tiny_dataset, seed=0)
        scores = model.score_users(np.arange(4))
        for row in range(1, 4):
            np.testing.assert_allclose(scores[row], scores[0])

    def test_beats_random_warm(self, small_dataset):
        popular = create_model("MostPopular", small_dataset, seed=0)
        random = create_model("Random", small_dataset, seed=0)
        pop = evaluate_scenario(popular, small_dataset.split, "warm_test",
                                k=10)
        rnd = evaluate_scenario(random, small_dataset.split, "warm_test",
                                k=10)
        assert pop.recall > rnd.recall

    def test_cold_items_get_zero_popularity(self, tiny_dataset):
        model = create_model("MostPopular", tiny_dataset, seed=0)
        scores = model.score_users(np.array([0]))[0]
        cold = tiny_dataset.split.cold_items
        warm_max = scores[tiny_dataset.split.warm_items].max()
        assert scores[cold].max() < warm_max


class TestMWUF:
    def test_trains_and_scores(self, tiny_dataset):
        model = create_model("MWUF", tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, QUICK)
        assert np.isfinite(result.losses).all()
        scores = model.score_users(np.arange(3))
        assert np.isfinite(scores).all()

    def test_cold_items_receive_fallback_shift(self, tiny_dataset):
        """Strict cold items get the global-mean user shift: their warmed
        embeddings differ from pure scaled initialization."""
        model = create_model("MWUF", tiny_dataset, embedding_dim=16, seed=0)
        _, warmed = model._forward()
        cold = tiny_dataset.split.cold_items
        # Shift is identical for all cold items (same fallback input);
        # subtracting any one cold item's shift from another's must not
        # leave zero unless their scaled bases coincide.
        assert np.isfinite(warmed.data[cold]).all()
        assert np.abs(warmed.data[cold]).sum() > 0

    def test_better_than_backbone_on_cold(self, small_dataset):
        config = TrainConfig(epochs=6, eval_every=3, batch_size=256,
                             learning_rate=0.05)
        mwuf = create_model("MWUF", small_dataset, embedding_dim=16, seed=0)
        train_model(mwuf, small_dataset, config)
        lgcn = create_model("LightGCN", small_dataset, embedding_dim=16,
                            seed=0)
        train_model(lgcn, small_dataset, config)
        mwuf_cold = evaluate_model(mwuf, small_dataset.split, k=10).cold
        lgcn_cold = evaluate_model(lgcn, small_dataset.split, k=10).cold
        assert mwuf_cold.recall >= lgcn_cold.recall
