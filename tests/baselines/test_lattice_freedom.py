"""Tests for the LATTICE and FREEDOM extra baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.train import TrainConfig, train_model

QUICK = TrainConfig(epochs=3, eval_every=3, batch_size=128,
                    learning_rate=0.05)


@pytest.mark.parametrize("name", ["LATTICE", "FREEDOM"])
class TestBothModels:
    def test_train_and_score(self, tiny_dataset, name):
        model = create_model(name, tiny_dataset, embedding_dim=16, seed=0)
        result = train_model(model, tiny_dataset, QUICK)
        assert np.isfinite(result.losses).all()
        scores = model.score_users(np.arange(3))
        assert scores.shape == (3, tiny_dataset.num_items)
        assert np.isfinite(scores).all()


class TestLatticeGraphMining:
    def test_graphs_refresh_during_training(self, tiny_dataset):
        model = create_model("LATTICE", tiny_dataset, embedding_dim=16,
                             seed=0, graph_refresh_every=1)
        before = model.item_graphs["text"].train_adjacency.copy()
        train_model(model, tiny_dataset, QUICK)
        after = model.item_graphs["text"].train_adjacency
        # The mined graph differs from the raw-feature graph.
        assert (before != after).nnz > 0

    def test_no_refresh_when_interval_large(self, tiny_dataset):
        model = create_model("LATTICE", tiny_dataset, embedding_dim=16,
                             seed=0, graph_refresh_every=1000)
        before = model.item_graphs["text"].train_adjacency.copy()
        train_model(model, tiny_dataset, QUICK)
        after = model.item_graphs["text"].train_adjacency
        assert (before != after).nnz == 0


class TestFreedomFrozenGraphs:
    def test_item_graphs_never_change(self, tiny_dataset):
        model = create_model("FREEDOM", tiny_dataset, embedding_dim=16,
                             seed=0)
        before = model.item_graphs["text"].train_adjacency.copy()
        train_model(model, tiny_dataset, QUICK)
        after = model.item_graphs["text"].train_adjacency
        assert (before != after).nnz == 0

    def test_denoising_drops_edges(self, tiny_dataset):
        model = create_model("FREEDOM", tiny_dataset, embedding_dim=16,
                             seed=0, edge_drop=0.5)
        full = model.graph.norm_adjacency.nnz
        denoised = model._denoised_adjacency().nnz
        assert denoised < full

    def test_inference_uses_full_graph(self, tiny_dataset):
        """Denoising is train-only; inference must be deterministic."""
        model = create_model("FREEDOM", tiny_dataset, embedding_dim=16,
                             seed=0)
        a = model.compute_representations()[1]
        b = model.compute_representations()[1]
        np.testing.assert_allclose(a, b)
