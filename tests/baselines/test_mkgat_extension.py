"""Parity of the vectorized MKGAT modality-node KG extension with the
historical per-item/per-modality loop."""

from __future__ import annotations

import numpy as np

from repro.baselines.mkgat import _extend_kg_with_modalities
from repro.data.kg_builder import KnowledgeGraph


def _loop_reference(kg: KnowledgeGraph, num_modalities: int):
    num_items = kg.num_items
    base_entities = kg.num_entities
    base_relations = kg.num_relations
    extra = []
    for m in range(num_modalities):
        node_base = base_entities + m * num_items
        for item in range(num_items):
            extra.append((item, base_relations + m, node_base + item))
    return np.concatenate([kg.triplets, np.asarray(extra, dtype=np.int64)])


def _toy_kg() -> KnowledgeGraph:
    triplets = np.array([[0, 0, 3], [1, 1, 4], [2, 0, 5]], dtype=np.int64)
    return KnowledgeGraph(
        triplets=triplets, num_entities=6, num_relations=2, num_items=3,
        entity_labels=("a",) * 6,
        relation_names=("r0", "r1"))


def test_extension_matches_loop():
    kg = _toy_kg()
    for num_modalities in (1, 2, 3):
        extended = _extend_kg_with_modalities(kg, num_modalities)
        assert np.array_equal(extended.triplets,
                              _loop_reference(kg, num_modalities))
        assert extended.num_entities == 6 + num_modalities * 3
        assert extended.num_relations == 2 + num_modalities


def test_zero_modalities_is_identity_on_triplets():
    kg = _toy_kg()
    extended = _extend_kg_with_modalities(kg, 0)
    assert np.array_equal(extended.triplets, kg.triplets)


def test_modality_nodes_are_distinct_per_item():
    extended = _extend_kg_with_modalities(_toy_kg(), 2)
    extra = extended.triplets[3:]
    assert len(np.unique(extra[:, 2])) == 6   # one node per (item, modality)
    assert set(extra[:, 1].tolist()) == {2, 3}
