"""Tests for the serving query session (the engine behind
``python -m repro serve``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.serve import EmbeddingStore, ServingSession


@pytest.fixture()
def session(tiny_dataset):
    model = create_model("BPR", tiny_dataset, embedding_dim=8)
    return ServingSession(EmbeddingStore.from_model(model, tiny_dataset),
                          default_k=5)


class TestQueries:
    def test_topk(self, session):
        output = session.execute("topk 3 4")
        assert output.startswith("user 3 ->")
        assert len(output.split("->")[1].split()) == 4

    def test_topk_default_k(self, session):
        output = session.execute("topk 0")
        assert len(output.split("->")[1].split()) == 5

    def test_batch_multiple_users(self, session):
        output = session.execute("batch 0,1,2 3")
        lines = output.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("user 1 ->")

    def test_cold_restricts_candidates(self, session):
        output = session.execute("cold 2 5")
        cold = set(session.store.cold_items().tolist())
        items = [int(cell.split(":")[0])
                 for cell in output.split("->")[1].split()]
        assert set(items) <= cold

    def test_stats(self, session):
        output = session.execute("stats")
        assert "users: 60" in output
        assert "ingested items: 0" in output

    def test_help_quit_comment_blank(self, session):
        assert "topk" in session.execute("help")
        assert session.execute("quit") is None
        assert session.execute("exit") is None
        assert session.execute("") == ""
        assert session.execute("# comment") == ""


class TestErrors:
    def test_unknown_command(self, session):
        assert "unknown command" in session.execute("frobnicate")

    def test_unknown_user(self, session):
        assert session.execute("topk 99999").startswith("error:")

    def test_malformed_user_list(self, session):
        assert session.execute("batch 1,x").startswith("error:")

    def test_missing_ingest_file(self, session, tmp_path):
        output = session.execute(f"ingest {tmp_path / 'absent.npz'}")
        assert output.startswith("error:")

    def test_corrupt_ingest_archive(self, session, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"PK\x03\x04truncated-not-a-zip")
        assert session.execute(f"ingest {path}").startswith("error:")
        # Session survives and keeps serving.
        assert session.execute("topk 0 1").startswith("user 0 ->")

    def test_usage_errors(self, session):
        assert session.execute("topk").startswith("error:")
        assert session.execute("ingest a b").startswith("error:")


class TestSwapFlow:
    def test_swap_command_publishes_new_snapshot(self, session, tmp_path,
                                                 rng):
        other = EmbeddingStore(rng.normal(size=(12, 8)),
                               rng.normal(size=(9, 8)),
                               metadata={"model": "swapped-in"})
        path = other.save(tmp_path / "next", format="v2")
        output = session.execute(f"swap {path} mmap")
        assert "snapshot v2" in output
        assert session.store.metadata["model"] == "swapped-in"
        assert "snapshot version: 2" in session.execute("stats")
        assert session.execute("topk 0 3").startswith("user 0 ->")

    def test_swap_errors_keep_session_alive(self, session, tmp_path):
        assert session.execute("swap").startswith("error:")
        output = session.execute(f"swap {tmp_path / 'absent'}")
        assert output.startswith("error:")
        assert session.execute("topk 0 1").startswith("user 0 ->")

    def test_sharded_session_serves(self, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=8)
        store = EmbeddingStore.from_model(model, tiny_dataset)
        plain = ServingSession(store, default_k=5)
        sharded = ServingSession(store, default_k=5, num_shards=3)
        assert sharded.execute("topk 3 4") == plain.execute("topk 3 4")


class TestIngestFlow:
    def test_ingest_then_query_cold_item(self, session, tmp_path):
        store = session.store
        target = int(store.warm_items()[0])
        path = tmp_path / "new.npz"
        np.savez(path, **{m: store.features[m][target][None, :]
                          for m in store.modalities})
        before = store.num_items
        output = session.execute(f"ingest {path}")
        assert f"ingested 1 item(s): [{before}]" in output

        # The freshly onboarded item is immediately rankable.
        output = session.execute("cold 0 50")
        items = [int(cell.split(":")[0])
                 for cell in output.split("->")[1].split()]
        assert before in items
