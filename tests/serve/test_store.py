"""Tests for the EmbeddingStore snapshot artifact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.serve import BatchRanker, EmbeddingStore


@pytest.fixture()
def store(tiny_dataset):
    model = create_model("BPR", tiny_dataset, embedding_dim=8)
    return EmbeddingStore.from_model(model, tiny_dataset)


class TestFromModel:
    def test_shapes_and_dtypes(self, store, tiny_dataset):
        assert store.num_users == tiny_dataset.num_users
        assert store.num_items == tiny_dataset.num_items
        assert store.dim == 8
        assert store.user_vectors.dtype == np.float32
        assert store.item_vectors.dtype == np.float32
        assert store.user_vectors.flags["C_CONTIGUOUS"]
        for modality in tiny_dataset.modalities:
            assert store.features[modality].dtype == np.float32

    def test_snapshot_matches_model(self, store, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=8)
        np.testing.assert_allclose(store.item_vectors,
                                   model.item_matrix().astype(np.float32))

    def test_cold_flags_and_seen(self, store, tiny_dataset):
        np.testing.assert_array_equal(store.is_cold,
                                      tiny_dataset.split.is_cold)
        assert not store.is_ingested.any()
        assert 0 < store.seen.nnz <= len(tiny_dataset.split.train)
        user, item = tiny_dataset.split.train[0]
        assert bool(store.seen[int(user), int(item)])

    def test_metadata(self, store):
        assert store.metadata["model"] == "BPR"
        assert store.metadata["dataset"] == "tiny"
        assert store.item_topk > 0

    def test_firzen_topk_recorded(self, tiny_dataset):
        model = create_model("Firzen", tiny_dataset, embedding_dim=8)
        snapshot = EmbeddingStore.from_model(model, tiny_dataset)
        assert snapshot.item_topk == model.config.item_item_topk


class TestRoundTrip:
    def test_disk_round_trip(self, store, tmp_path):
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        np.testing.assert_array_equal(loaded.user_vectors,
                                      store.user_vectors)
        np.testing.assert_array_equal(loaded.item_vectors,
                                      store.item_vectors)
        np.testing.assert_array_equal(loaded.is_cold, store.is_cold)
        np.testing.assert_array_equal(loaded.is_ingested,
                                      store.is_ingested)
        assert (loaded.seen != store.seen).nnz == 0
        assert loaded.modalities == store.modalities
        for modality in store.modalities:
            np.testing.assert_array_equal(loaded.features[modality],
                                          store.features[modality])
        assert loaded.item_topk == store.item_topk
        assert loaded.metadata == store.metadata

    def test_save_normalizes_extensionless_path(self, store, tmp_path):
        written = store.save(tmp_path / "mystore")
        assert written == tmp_path / "mystore.npz"
        assert written.exists()
        loaded = EmbeddingStore.load(written)
        assert loaded.num_items == store.num_items

    def test_round_trip_preserves_rankings(self, store, tmp_path):
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        users = np.arange(6)
        before = BatchRanker.from_store(store).topk(users, 10)
        after = BatchRanker.from_store(loaded).topk(users, 10)
        np.testing.assert_array_equal(before.items, after.items)


def assert_stores_equal(loaded, store):
    np.testing.assert_array_equal(loaded.user_vectors, store.user_vectors)
    np.testing.assert_array_equal(loaded.item_vectors, store.item_vectors)
    np.testing.assert_array_equal(loaded.is_cold, store.is_cold)
    np.testing.assert_array_equal(loaded.is_ingested, store.is_ingested)
    assert (loaded.seen != store.seen).nnz == 0
    assert loaded.modalities == store.modalities
    for modality in store.modalities:
        np.testing.assert_array_equal(loaded.features[modality],
                                      store.features[modality])
    assert loaded.item_topk == store.item_topk
    assert loaded.metadata == store.metadata


def is_memory_mapped(array):
    """Walk the base chain down to the backing buffer: a zero-copy view
    of a mapped file has a ``np.memmap`` somewhere below it (whose own
    ``.base`` is an ``mmap.mmap``, not an ndarray)."""
    base = array
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False


class TestFormatV2:
    def test_v2_round_trip_equals_v1(self, store, tmp_path):
        v1 = EmbeddingStore.load(store.save(tmp_path / "a"))
        v2 = EmbeddingStore.load(store.save(tmp_path / "b", format="v2"))
        assert_stores_equal(v1, store)
        assert_stores_equal(v2, store)

    def test_mmap_load_is_zero_copy(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="v2")
        mapped = EmbeddingStore.load(path, mmap=True)
        assert_stores_equal(mapped, store)
        for array in (mapped.user_vectors, mapped.item_vectors,
                      *(mapped.features[m] for m in mapped.modalities)):
            assert not array.flags["OWNDATA"]
            assert is_memory_mapped(array)
        # the eager load really does copy, as a control
        eager = EmbeddingStore.load(path)
        assert not is_memory_mapped(eager.item_vectors)

    def test_mmap_store_preserves_rankings(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="v2")
        mapped = EmbeddingStore.load(path, mmap=True)
        users = np.arange(6)
        before = BatchRanker.from_store(store).topk(users, 10)
        after = BatchRanker.from_store(mapped).topk(users, 10)
        np.testing.assert_array_equal(before.items, after.items)
        np.testing.assert_array_equal(before.scores, after.scores)

    def test_mmap_on_v1_rejected(self, store, tmp_path):
        path = store.save(tmp_path / "s.npz")
        with pytest.raises(ValueError, match="re-export"):
            EmbeddingStore.load(path, mmap=True)

    def test_v2_rejects_npz_suffix(self, store, tmp_path):
        with pytest.raises(ValueError, match="directory"):
            store.save(tmp_path / "s.npz", format="v2")

    def test_unknown_format_rejected(self, store, tmp_path):
        with pytest.raises(ValueError, match="unknown store format"):
            store.save(tmp_path / "s", format="v3")

    def test_republish_over_existing_directory(self, store, tmp_path):
        path = store.save(tmp_path / "s", format="v2")
        other = EmbeddingStore(store.user_vectors * 2.0,
                               store.item_vectors * 2.0,
                               metadata={"model": "replacement"})
        assert other.save(path, format="v2") == path
        reloaded = EmbeddingStore.load(path)
        assert reloaded.metadata["model"] == "replacement"
        np.testing.assert_array_equal(reloaded.item_vectors,
                                      other.item_vectors)

    def test_torn_write_rejected(self, store, tmp_path):
        # A directory without a manifest is an interrupted publish and
        # must never load as a (partial) store.
        path = store.save(tmp_path / "s", format="v2")
        (path / "manifest.json").unlink()
        with pytest.raises(ValueError, match="torn"):
            EmbeddingStore.load(path)

    def test_ingest_onto_mmap_store(self, store, tmp_path, rng):
        # Onboarding grows the item axis, which cannot happen in-place
        # on a read-only mapping; the store must still accept ingests.
        path = store.save(tmp_path / "s", format="v2")
        mapped = EmbeddingStore.load(path, mmap=True)
        new = {m: rng.normal(size=(2, store.features[m].shape[1]))
               for m in store.modalities}
        ids = mapped.ingest_items(new)
        assert list(ids) == [store.num_items, store.num_items + 1]
        assert mapped.num_items == store.num_items + 2


class TestValidation:
    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))

    def test_feature_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(3, 4)), rng.normal(size=(5, 4)),
                           features={"text": rng.normal(size=(4, 2))})
