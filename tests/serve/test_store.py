"""Tests for the EmbeddingStore snapshot artifact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.serve import BatchRanker, EmbeddingStore


@pytest.fixture()
def store(tiny_dataset):
    model = create_model("BPR", tiny_dataset, embedding_dim=8)
    return EmbeddingStore.from_model(model, tiny_dataset)


class TestFromModel:
    def test_shapes_and_dtypes(self, store, tiny_dataset):
        assert store.num_users == tiny_dataset.num_users
        assert store.num_items == tiny_dataset.num_items
        assert store.dim == 8
        assert store.user_vectors.dtype == np.float32
        assert store.item_vectors.dtype == np.float32
        assert store.user_vectors.flags["C_CONTIGUOUS"]
        for modality in tiny_dataset.modalities:
            assert store.features[modality].dtype == np.float32

    def test_snapshot_matches_model(self, store, tiny_dataset):
        model = create_model("BPR", tiny_dataset, embedding_dim=8)
        np.testing.assert_allclose(store.item_vectors,
                                   model.item_matrix().astype(np.float32))

    def test_cold_flags_and_seen(self, store, tiny_dataset):
        np.testing.assert_array_equal(store.is_cold,
                                      tiny_dataset.split.is_cold)
        assert not store.is_ingested.any()
        assert 0 < store.seen.nnz <= len(tiny_dataset.split.train)
        user, item = tiny_dataset.split.train[0]
        assert bool(store.seen[int(user), int(item)])

    def test_metadata(self, store):
        assert store.metadata["model"] == "BPR"
        assert store.metadata["dataset"] == "tiny"
        assert store.item_topk > 0

    def test_firzen_topk_recorded(self, tiny_dataset):
        model = create_model("Firzen", tiny_dataset, embedding_dim=8)
        snapshot = EmbeddingStore.from_model(model, tiny_dataset)
        assert snapshot.item_topk == model.config.item_item_topk


class TestRoundTrip:
    def test_disk_round_trip(self, store, tmp_path):
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        np.testing.assert_array_equal(loaded.user_vectors,
                                      store.user_vectors)
        np.testing.assert_array_equal(loaded.item_vectors,
                                      store.item_vectors)
        np.testing.assert_array_equal(loaded.is_cold, store.is_cold)
        np.testing.assert_array_equal(loaded.is_ingested,
                                      store.is_ingested)
        assert (loaded.seen != store.seen).nnz == 0
        assert loaded.modalities == store.modalities
        for modality in store.modalities:
            np.testing.assert_array_equal(loaded.features[modality],
                                          store.features[modality])
        assert loaded.item_topk == store.item_topk
        assert loaded.metadata == store.metadata

    def test_save_normalizes_extensionless_path(self, store, tmp_path):
        written = store.save(tmp_path / "mystore")
        assert written == tmp_path / "mystore.npz"
        assert written.exists()
        loaded = EmbeddingStore.load(written)
        assert loaded.num_items == store.num_items

    def test_round_trip_preserves_rankings(self, store, tmp_path):
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        users = np.arange(6)
        before = BatchRanker.from_store(store).topk(users, 10)
        after = BatchRanker.from_store(loaded).topk(users, 10)
        np.testing.assert_array_equal(before.items, after.items)


class TestValidation:
    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))

    def test_feature_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(3, 4)), rng.normal(size=(5, 4)),
                           features={"text": rng.normal(size=(4, 2))})
