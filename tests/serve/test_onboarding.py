"""Tests for online cold-start onboarding (`serve.ingest_items`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import create_model
from repro.serve import (BatchRanker, EmbeddingStore, expand_item_graph,
                         ingest_items)


@pytest.fixture()
def store(tiny_dataset):
    model = create_model("BPR", tiny_dataset, embedding_dim=8)
    return EmbeddingStore.from_model(model, tiny_dataset)


def twin_features(store, warm_item: int) -> dict:
    """Features identical to an existing warm item's."""
    return {modality: store.features[modality][warm_item][None, :].copy()
            for modality in store.modalities}


class TestExpandItemGraph:
    def test_twin_is_nearest_neighbor(self, store):
        warm = store.warm_items()
        target = int(warm[0])
        modality = store.modalities[0]
        expansion = expand_item_graph(
            store.features[modality],
            store.features[modality][target][None, :], warm, top_k=5,
            modality=modality)
        assert expansion.neighbors.shape == (1, 5)
        assert expansion.neighbors[0, 0] == target
        assert expansion.similarities[0, 0] == pytest.approx(1.0)
        # Neighbors sorted by descending similarity.
        assert (np.diff(expansion.similarities[0]) <= 1e-12).all()

    def test_only_warm_sources(self, store, rng):
        warm = store.warm_items()
        modality = store.modalities[0]
        expansion = expand_item_graph(
            store.features[modality],
            rng.normal(size=(3, store.features[modality].shape[1])),
            warm, top_k=4)
        assert np.isin(expansion.neighbors, warm).all()


class TestIngestItems:
    def test_new_items_get_ids_and_flags(self, store, rng):
        before = store.num_items
        features = {m: rng.normal(size=(2, store.features[m].shape[1]))
                    for m in store.modalities}
        new_ids = store.ingest_items(features)
        np.testing.assert_array_equal(new_ids, [before, before + 1])
        assert store.num_items == before + 2
        assert store.is_cold[new_ids].all()
        assert store.is_ingested[new_ids].all()
        assert store.seen.shape == (store.num_users, store.num_items)
        for modality in store.modalities:
            assert store.features[modality].shape[0] == store.num_items

    def test_new_item_is_retrievable(self, store):
        target = int(store.warm_items()[3])
        new_ids = store.ingest_items(twin_features(store, target))
        ranker = BatchRanker.from_store(store)
        result = ranker.topk(np.arange(4), 3, candidates=new_ids,
                             mask_seen=False)
        assert (result.items == new_ids[0]).all()
        assert np.isfinite(result.scores).all()

    def test_twin_scores_close_to_neighborhood(self, store):
        # A twin of a warm item aggregates that item's kNN neighborhood,
        # so its vector must be far closer to the twin than random items.
        target = int(store.warm_items()[0])
        new_ids = store.ingest_items(twin_features(store, target))
        new_vec = store.item_vectors[new_ids[0]]
        target_vec = store.item_vectors[target]
        others = store.item_vectors[store.warm_items()]
        distance = np.linalg.norm(new_vec - target_vec)
        median_distance = np.median(
            np.linalg.norm(others - target_vec, axis=1))
        assert distance < median_distance

    def test_warm_rankings_unchanged(self, store, rng):
        users = np.arange(10)
        warm = store.warm_items()
        ranker_before = BatchRanker.from_store(store)
        before = ranker_before.topk(users, 10, candidates=warm)
        features = {m: rng.normal(size=(3, store.features[m].shape[1]))
                    for m in store.modalities}
        store.ingest_items(features)
        after = BatchRanker.from_store(store).topk(users, 10,
                                                   candidates=warm)
        np.testing.assert_array_equal(before.items, after.items)
        np.testing.assert_array_equal(before.scores, after.scores)

    def test_ingested_never_a_source(self, store, rng):
        # Items onboarded earlier must not influence later onboarding
        # (warm -> cold only, eq. 34-35).
        first = store.ingest_items(twin_features(store,
                                                 int(store.warm_items()[0])))
        vec_before = store.item_vectors[first[0]].copy()
        features = {m: rng.normal(size=(5, store.features[m].shape[1]))
                    for m in store.modalities}
        second = store.ingest_items(features)
        expansion = expand_item_graph(
            store.features[store.modalities[0]],
            np.asarray(features[store.modalities[0]], dtype=np.float32),
            store.warm_items(), store.item_topk)
        assert not np.isin(first, expansion.neighbors).any()
        assert not np.isin(second, store.warm_items()).any()
        np.testing.assert_array_equal(store.item_vectors[first[0]],
                                      vec_before)

    def test_round_trip_after_ingest(self, store, rng, tmp_path):
        features = {m: rng.normal(size=(2, store.features[m].shape[1]))
                    for m in store.modalities}
        store.ingest_items(features)
        path = tmp_path / "extended.npz"
        store.save(path)
        loaded = EmbeddingStore.load(path)
        assert loaded.num_items == store.num_items
        np.testing.assert_array_equal(loaded.is_ingested,
                                      store.is_ingested)
        np.testing.assert_array_equal(loaded.item_vectors,
                                      store.item_vectors)

    def test_ingest_zero_items(self, store):
        features = {m: np.empty((0, store.features[m].shape[1]))
                    for m in store.modalities}
        assert len(store.ingest_items(features)) == 0

    def test_top_k_must_be_positive(self, store, rng):
        features = {m: rng.normal(size=(1, store.features[m].shape[1]))
                    for m in store.modalities}
        with pytest.raises(ValueError, match="top_k"):
            store.ingest_items(features, top_k=0)
        with pytest.raises(ValueError, match="top_k"):
            store.ingest_items(features, top_k=-1)

    def test_modality_validation(self, store, rng):
        with pytest.raises(ValueError):
            ingest_items(store, {"text": rng.normal(size=(1, 3))})
        bad_dim = {m: rng.normal(size=(1, 3)) for m in store.modalities}
        with pytest.raises(ValueError):
            ingest_items(store, bad_dim)
        mismatched = {
            m: rng.normal(size=(1 + i, store.features[m].shape[1]))
            for i, m in enumerate(store.modalities)
        }
        with pytest.raises(ValueError):
            ingest_items(store, mismatched)
