"""Tests for the micro-batching queue and the HTTP serving daemon."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (BatchRanker, EmbeddingStore, MicroBatcher,
                         ServingDaemon, SnapshotManager)


def make_store(seed, num_items=50):
    rng = np.random.default_rng(seed)
    return EmbeddingStore(
        rng.normal(size=(30, 8)), rng.normal(size=(num_items, 8)),
        features={"image": rng.normal(size=(num_items, 5))},
        is_cold=rng.random(num_items) < 0.3,
        metadata={"model": f"seed{seed}"})


@pytest.fixture()
def manager():
    return SnapshotManager(make_store(1))


class TestMicroBatcher:
    def test_single_request_matches_library_ranker(self, manager):
        batcher = MicroBatcher(manager)
        try:
            response = batcher.submit(3, 5).result(timeout=30)
        finally:
            batcher.stop()
        store = manager.current.store
        expected = BatchRanker.from_store(store).topk(np.array([3]), 5)
        assert response["items"] == expected.items[0].tolist()
        assert response["scores"] == expected.scores[0].tolist()
        assert response["snapshot_version"] == 1

    def test_cold_mode_restricts_candidates(self, manager):
        batcher = MicroBatcher(manager)
        try:
            response = batcher.submit(3, 5, mode="cold").result(timeout=30)
        finally:
            batcher.stop()
        store = manager.current.store
        expected = BatchRanker.from_store(store).topk(
            np.array([3]), 5, candidates=store.cold_items())
        assert response["items"] == expected.items[0].tolist()

    def test_concurrent_requests_coalesce_and_stay_exact(self, manager):
        store = manager.current.store
        reference = BatchRanker.from_store(store).topk(
            np.arange(store.num_users), 7)
        batcher = MicroBatcher(manager, max_batch=16)
        try:
            futures = [batcher.submit(user, 7)
                       for user in range(store.num_users)]
            for user, future in enumerate(futures):
                response = future.result(timeout=30)
                # batching changes scheduling, never results
                assert response["items"] == \
                    reference.items[user].tolist()
            stats = batcher.stats()
        finally:
            batcher.stop()
        assert stats["requests"] == store.num_users
        # the burst must actually have been coalesced
        assert stats["max_batch_observed"] > 1
        assert stats["batches"] < stats["requests"]

    def test_invalid_mode_rejected(self, manager):
        batcher = MicroBatcher(manager)
        try:
            with pytest.raises(ValueError):
                batcher.submit(0, 5, mode="nope")
        finally:
            batcher.stop()

    def test_error_propagates_to_future(self, manager):
        batcher = MicroBatcher(manager)
        try:
            # out-of-range user id: the scoring gather raises inside the
            # worker and the future must surface it, not hang
            with pytest.raises(IndexError):
                batcher.submit(10_000, 5).result(timeout=30)
        finally:
            batcher.stop()


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _post(url, body, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


class TestServingDaemon:
    @pytest.fixture()
    def daemon(self, manager):
        with ServingDaemon(manager) as running:
            yield running

    def test_healthz_and_stats(self, daemon):
        health = _get(daemon.url + "/healthz")
        assert health == {"status": "ok", "snapshot_version": 1}
        stats = _get(daemon.url + "/stats")
        assert stats["snapshot_version"] == 1
        assert stats["store"]["items"] == 50

    def test_topk_round_trip_matches_ranker(self, daemon, manager):
        response = _get(daemon.url + "/topk?user=4&k=6")
        expected = BatchRanker.from_store(manager.current.store).topk(
            np.array([4]), 6)
        assert response["items"] == expected.items[0].tolist()
        assert response["snapshot_version"] == 1

    def test_cold_round_trip(self, daemon, manager):
        store = manager.current.store
        response = _get(daemon.url + "/cold?user=4&k=3")
        expected = BatchRanker.from_store(store).topk(
            np.array([4]), 3, candidates=store.cold_items())
        assert response["items"] == expected.items[0].tolist()

    def test_bad_requests_return_4xx(self, daemon):
        for path in ("/topk", "/topk?user=notanint", "/topk?user=99999",
                     "/nope"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(daemon.url + path)
            assert 400 <= excinfo.value.code < 500
            assert "error" in json.loads(excinfo.value.read())

    def test_swap_round_trip(self, daemon, manager, tmp_path):
        new_store = make_store(2)
        path = new_store.save(tmp_path / "next", format="v2")
        response = _post(daemon.url + "/swap",
                         {"path": str(path), "mmap": True})
        assert response["snapshot_version"] == 2
        after = _get(daemon.url + "/topk?user=4&k=6")
        expected = BatchRanker.from_store(new_store).topk(np.array([4]), 6)
        assert after["items"] == expected.items[0].tolist()
        assert after["snapshot_version"] == 2

    def test_ingest_round_trip(self, daemon, manager, rng):
        before = manager.current.store.num_items
        response = _post(daemon.url + "/ingest", {"features": {
            "image": rng.normal(size=(2, 5)).tolist()}})
        assert response["ingested_items"] == [before, before + 1]
        assert response["num_items"] == before + 2
        # the republished snapshot ranks the new items
        cold = _get(daemon.url + f"/cold?user=0&k={before + 2}")
        assert before in cold["items"] and before + 1 in cold["items"]

    def test_concurrent_queries_during_swap_are_never_torn(
            self, daemon, manager, tmp_path):
        """Every response racing a hot-swap must bit-match the library
        ranker of the snapshot version the response claims."""
        stores = {1: manager.current.store, 2: make_store(2)}
        path = stores[2].save(tmp_path / "next", format="v2")
        users = list(range(stores[1].num_users))
        expected = {
            version: BatchRanker.from_store(store).topk(
                np.asarray(users), 6)
            for version, store in stores.items()}
        failures: list = []
        swapped = threading.Event()

        def client(user):
            try:
                for _ in range(6):
                    response = _get(daemon.url + f"/topk?user={user}&k=6")
                    version = response["snapshot_version"]
                    want = expected[version].items[user].tolist()
                    if response["items"] != want:
                        failures.append((user, version, response))
            except Exception as exc:  # pragma: no cover - diagnostics
                failures.append((user, "exc", exc))

        threads = [threading.Thread(target=client, args=(user,))
                   for user in users[:8]]
        for thread in threads:
            thread.start()
        _post(daemon.url + "/swap", {"path": str(path)})
        swapped.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        versions = {_get(daemon.url + "/healthz")["snapshot_version"]}
        assert versions == {2}
