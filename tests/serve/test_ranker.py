"""Tests for the batched ranking kernels: exact parity with the seed
per-user path is the contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.protocol import evaluate_scenario, rank_candidates
from repro.serve.ranker import (BatchRanker, apply_seen_mask,
                                interactions_to_csr, topk_from_scores)


def reference_rankings(scores, candidates, k, seen=None):
    """The seed evaluation loop, verbatim: per-user copy, set masking,
    rank_candidates."""
    out = []
    for row in range(scores.shape[0]):
        user_scores = scores[row].copy()
        for item in (seen or {}).get(row, ()):
            user_scores[item] = -np.inf
        out.append(rank_candidates(user_scores, candidates, k))
    return np.asarray(out)


class TestInteractionsToCsr:
    def test_shape_and_contents(self):
        pairs = np.array([[0, 1], [0, 2], [2, 0]])
        matrix = interactions_to_csr(pairs, 3, 4)
        assert matrix.shape == (3, 4)
        assert matrix[0, 1] and matrix[0, 2] and matrix[2, 0]
        assert matrix.nnz == 3

    def test_duplicates_collapse(self):
        pairs = np.array([[1, 1], [1, 1], [1, 2]])
        matrix = interactions_to_csr(pairs, 2, 3)
        assert bool(matrix[1, 1]) is True
        assert matrix[1].getnnz() == 2

    def test_empty(self):
        matrix = interactions_to_csr(np.empty((0, 2)), 5, 6)
        assert matrix.shape == (5, 6) and matrix.nnz == 0


def loop_extra_seen_reference(scores, users, extra_seen):
    """The historical per-row Python loop, verbatim, as the parity
    reference for the flattened-scatter rewrite."""
    for row, user in enumerate(users):
        items = extra_seen.get(int(user))
        if items is not None and len(items):
            scores[row, np.fromiter(items, dtype=np.int64)] = -np.inf
    return scores


class TestApplySeenMask:
    def test_masks_csr_rows(self, rng):
        scores = rng.normal(size=(3, 6))
        seen = interactions_to_csr(np.array([[4, 2], [9, 5]]), 10, 6)
        apply_seen_mask(scores, np.array([4, 0, 9]), seen)
        assert scores[0, 2] == -np.inf
        assert scores[2, 5] == -np.inf
        assert np.isfinite(scores[1]).all()

    def test_extra_seen_only(self, rng):
        scores = rng.normal(size=(2, 4))
        apply_seen_mask(scores, np.array([7, 3]), None,
                        extra_seen={3: [1, 2], 5: [0]})
        assert scores[1, 1] == -np.inf and scores[1, 2] == -np.inf
        assert np.isfinite(scores[0]).all()

    def test_extra_seen_scatter_matches_loop_on_duplicate_users(self, rng):
        # The flattened (row, col) scatter must mask exactly what the
        # old per-row loop masked, including when the same user appears
        # in several rows and when the duplicate rows repeat their sets.
        users = np.array([3, 7, 3, 3, 9, 7, 11])
        extra_seen = {3: [0, 5, 5], 7: [2], 9: [], 11: [1, 8],
                      99: [4]}  # 99 not in the batch
        scores = rng.normal(size=(len(users), 12))
        expected = loop_extra_seen_reference(scores.copy(), users,
                                             extra_seen)
        apply_seen_mask(scores, users, None, extra_seen=extra_seen)
        np.testing.assert_array_equal(scores, expected)

    def test_extra_seen_empty_batch_and_empty_dict(self, rng):
        scores = rng.normal(size=(3, 5))
        before = scores.copy()
        apply_seen_mask(scores, np.array([0, 1, 2]), None, extra_seen={})
        np.testing.assert_array_equal(scores, before)
        empty = rng.normal(size=(0, 5))
        apply_seen_mask(empty, np.array([], dtype=np.int64), None,
                        extra_seen={0: [1]})


class TestTopkFromScores:
    def test_matches_rank_candidates_continuous(self, rng):
        scores = rng.normal(size=(40, 60))
        candidates = rng.choice(60, size=35, replace=False)
        result = topk_from_scores(scores, 10, candidates=candidates)
        expected = reference_rankings(scores, candidates, 10)
        np.testing.assert_array_equal(result.items, expected)

    def test_matches_rank_candidates_with_heavy_ties(self, rng):
        # Quantized scores force ties everywhere, including at the k-th
        # boundary: the batched kernel must make the same tie choices as
        # the seed's 1-D argpartition + stable sort.
        scores = np.round(rng.normal(size=(50, 30)), 1)
        candidates = np.arange(30)
        result = topk_from_scores(scores, 7, candidates=candidates)
        expected = reference_rankings(scores, candidates, 7)
        np.testing.assert_array_equal(result.items, expected)

    def test_scores_align_with_items(self, rng):
        scores = rng.normal(size=(5, 12))
        result = topk_from_scores(scores, 4)
        for row in range(5):
            np.testing.assert_allclose(result.scores[row],
                                       scores[row][result.items[row]])

    def test_k_clamped_to_candidates(self, rng):
        scores = rng.normal(size=(3, 10))
        result = topk_from_scores(scores, 99, candidates=np.array([2, 5]))
        assert result.items.shape == (3, 2)

    def test_empty_candidates(self, rng):
        scores = rng.normal(size=(3, 10))
        result = topk_from_scores(scores, 5, candidates=np.array([], int))
        assert result.items.shape == (3, 0)


class TestBatchRanker:
    @pytest.fixture()
    def vectors(self, rng):
        return rng.normal(size=(30, 8)), rng.normal(size=(50, 8))

    def test_matches_reference_with_seen_and_candidates(self, vectors, rng):
        users_mat, items_mat = vectors
        pairs = np.array([[u, rng.integers(50)] for u in range(30)
                          for _ in range(3)])
        seen = interactions_to_csr(pairs, 30, 50)
        ranker = BatchRanker(users_mat, items_mat, seen=seen, block_size=7)
        users = np.arange(30)
        candidates = rng.choice(50, size=40, replace=False)
        result = ranker.topk(users, 5, candidates=candidates)

        scores = users_mat @ items_mat.T
        seen_sets = {int(u): set(seen[u].indices) for u in users}
        expected = reference_rankings(scores, candidates, 5, seen_sets)
        np.testing.assert_array_equal(result.items, expected)

    def test_full_catalog_equals_candidate_all(self, vectors):
        users_mat, items_mat = vectors
        ranker = BatchRanker(users_mat, items_mat, block_size=4)
        users = np.arange(11)
        full = ranker.topk(users, 6)
        explicit = ranker.topk(users, 6, candidates=np.arange(50))
        np.testing.assert_array_equal(full.items, explicit.items)
        np.testing.assert_array_equal(full.scores, explicit.scores)

    def test_blocking_is_invisible(self, vectors):
        users_mat, items_mat = vectors
        users = np.arange(30)
        small = BatchRanker(users_mat, items_mat, block_size=3)
        big = BatchRanker(users_mat, items_mat, block_size=1000)
        np.testing.assert_array_equal(small.topk(users, 8).items,
                                      big.topk(users, 8).items)

    def test_mask_seen_off(self, vectors, rng):
        users_mat, items_mat = vectors
        seen = interactions_to_csr(np.array([[0, 3]]), 30, 50)
        ranker = BatchRanker(users_mat, items_mat, seen=seen)
        masked = ranker.topk(np.array([0]), 50)
        unmasked = ranker.topk(np.array([0]), 50, mask_seen=False)
        assert 3 not in masked.items[0][np.isfinite(masked.scores[0])]
        assert 3 in unmasked.items[0]

    def test_extra_seen_maps_into_candidates(self, vectors):
        users_mat, items_mat = vectors
        ranker = BatchRanker(users_mat, items_mat)
        candidates = np.arange(10)
        result = ranker.topk(np.array([4]), 10, candidates=candidates,
                             extra_seen={4: [1, 2, 49]})  # 49 not a candidate
        finite = result.items[0][np.isfinite(result.scores[0])]
        assert 1 not in finite and 2 not in finite

    def test_extra_seen_masks_every_duplicate_row(self, vectors):
        users_mat, items_mat = vectors
        ranker = BatchRanker(users_mat, items_mat)
        result = ranker.topk(np.array([4, 4]), 50, extra_seen={4: [1]})
        for row in range(2):
            finite = result.items[row][np.isfinite(result.scores[row])]
            assert 1 not in finite
        np.testing.assert_array_equal(result.items[0], result.items[1])

    def test_from_model_and_scores(self, tiny_dataset):
        from repro.baselines import create_model
        model = create_model("BPR", tiny_dataset, embedding_dim=8)
        ranker = BatchRanker.from_model(
            model, train_interactions=tiny_dataset.split.train)
        users = np.arange(5)
        np.testing.assert_allclose(ranker.scores(users),
                                   model.score_users(users))

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchRanker(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))

    def test_invalid_score_tile_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchRanker(rng.normal(size=(3, 4)), rng.normal(size=(5, 4)),
                        score_tile=0)

    def test_no_negated_item_matrix_resident(self):
        # Satellite of the eager-negation removal: constructing a ranker
        # over a large catalog and scoring against it must not allocate
        # a second catalog-sized matrix (the old `_neg_item_vectors`
        # copy). Peak RSS is a high-water mark, so the item matrix is
        # sized to dominate anything the suite has touched so far; the
        # old copy would add its full 128 MB on top of the baseline.
        import resource

        num_items, dim = 500_000, 64
        rng = np.random.default_rng(0)
        items_mat = rng.standard_normal((num_items, dim), dtype=np.float32)
        users_mat = rng.standard_normal((4, dim), dtype=np.float32)
        baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        ranker = BatchRanker(users_mat, items_mat, block_size=4)
        ranker.topk(np.arange(4), 10)
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        item_matrix_kb = items_mat.nbytes // 1024
        # scoring working set (score block + argpartition indices) is
        # ~24 MB here; a negated catalog copy would be 128 MB
        assert peak_kb - baseline_kb < item_matrix_kb // 2


class TestProtocolParity:
    """The rewired evaluate_scenario must reproduce the seed loop."""

    def _seed_evaluate_rankings(self, model, split, which, k, extra_seen=None):
        truth = split.ground_truth(which)
        users = np.asarray(sorted(truth.keys()), dtype=np.int64)
        cold = which.startswith("cold")
        candidates = np.asarray(split.cold_items if cold
                                else split.warm_items)
        seen = split.train_items_by_user() if not cold else {}
        scores = model.score_users(users)
        rankings = {}
        for row, user in enumerate(users):
            user_scores = scores[row].copy()
            for item in seen.get(int(user), ()):
                user_scores[item] = -np.inf
            if extra_seen:
                for item in extra_seen.get(int(user), ()):
                    user_scores[item] = -np.inf
            rankings[int(user)] = rank_candidates(user_scores, candidates, k)
        return rankings

    def test_identical_rankings_to_seed_loop(self, tiny_dataset):
        from repro.baselines import create_model
        model = create_model("MostPopular", tiny_dataset, embedding_dim=8)
        split = tiny_dataset.split
        for which in ("warm_test", "cold_test"):
            seed_rankings = self._seed_evaluate_rankings(model, split,
                                                         which, 20)
            truth = split.ground_truth(which)
            users = np.asarray(sorted(truth.keys()), dtype=np.int64)
            cold = which.startswith("cold")
            candidates = np.asarray(split.cold_items if cold
                                    else split.warm_items)
            scores = np.array(model.score_users(users), dtype=np.float64)
            seen = None if cold else interactions_to_csr(
                split.train, split.num_users, split.num_items)
            apply_seen_mask(scores, users, seen)
            batched = topk_from_scores(scores, 20, candidates=candidates)
            for row, user in enumerate(users):
                np.testing.assert_array_equal(seed_rankings[int(user)],
                                              batched.items[row])

    def test_evaluate_scenario_metrics_unchanged(self, tiny_dataset):
        from repro.baselines import create_model
        model = create_model("MostPopular", tiny_dataset, embedding_dim=8)
        result = evaluate_scenario(model, tiny_dataset.split, "warm_test",
                                   k=10)
        # Re-deriving the metrics from the seed loop must agree exactly.
        from repro.eval.metrics import evaluate_rankings
        seed_rankings = self._seed_evaluate_rankings(
            model, tiny_dataset.split, "warm_test", 10)
        truth = tiny_dataset.split.ground_truth("warm_test")
        expected = evaluate_rankings(seed_rankings, truth, k=10)
        assert result == expected
