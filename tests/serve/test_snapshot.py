"""Tests for atomic snapshot hot-swap: queries racing a swap must see
one snapshot fully — old or new — never a torn mix."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import (BatchRanker, EmbeddingStore, ShardedRanker,
                         SnapshotManager)


def make_store(seed, num_items=40):
    rng = np.random.default_rng(seed)
    return EmbeddingStore(
        rng.normal(size=(25, 8)), rng.normal(size=(num_items, 8)),
        features={"image": rng.normal(size=(num_items, 5))},
        is_cold=rng.random(num_items) < 0.25,
        metadata={"model": f"seed{seed}"})


class TestSnapshotManager:
    def test_initial_publish(self):
        manager = SnapshotManager(make_store(1))
        assert manager.version == 1
        assert manager.current.store.metadata["model"] == "seed1"
        assert isinstance(manager.current.ranker, BatchRanker)

    def test_no_snapshot_raises(self):
        manager = SnapshotManager()
        with pytest.raises(RuntimeError):
            manager.current

    def test_swap_bumps_version_and_pins_old(self):
        manager = SnapshotManager(make_store(1))
        old = manager.current
        new = manager.swap(make_store(2), source="test")
        assert new.version == 2 and manager.current is new
        # the old snapshot stays fully usable for in-flight queries
        result = old.ranker.topk(np.arange(5), 5)
        expected = BatchRanker.from_store(old.store).topk(np.arange(5), 5)
        np.testing.assert_array_equal(result.items, expected.items)

    def test_sharded_manager_builds_sharded_ranker(self):
        manager = SnapshotManager(make_store(1), num_shards=3)
        assert isinstance(manager.current.ranker, ShardedRanker)
        assert manager.current.ranker.num_shards == 3

    def test_swap_from_path_v1_and_v2(self, tmp_path):
        store = make_store(3)
        v1 = store.save(tmp_path / "a")
        v2 = store.save(tmp_path / "b", format="v2")
        manager = SnapshotManager(make_store(1))
        snap1 = manager.swap_from_path(v1)
        snap2 = manager.swap_from_path(v2, mmap=True)
        assert snap2.version == snap1.version + 1
        np.testing.assert_array_equal(snap1.store.item_vectors,
                                      snap2.store.item_vectors)
        assert not snap2.store.item_vectors.flags["OWNDATA"]

    def test_describe_includes_version(self):
        manager = SnapshotManager(make_store(1))
        info = manager.describe()
        assert info["snapshot version"] == 1
        assert info["model"] == "seed1"


class TestConcurrentSwap:
    def test_queries_never_see_a_torn_snapshot(self):
        """Readers racing rapid swaps must get rankings that exactly
        match ONE of the published stores — never a mix of an old
        store's vectors with a new store's ranker or vice versa."""
        stores = [make_store(seed) for seed in range(6)]
        users = np.arange(10)
        expected = {}
        for seed, store in enumerate(stores):
            result = BatchRanker.from_store(store).topk(users, 8)
            expected[seed] = (result.items, result.scores)
        manager = SnapshotManager(stores[0])
        stop = threading.Event()
        failures: list = []

        def reader():
            while not stop.is_set():
                snapshot = manager.current  # one atomic grab
                result = snapshot.ranker.topk(users, 8)
                matched = any(
                    np.array_equal(result.items, items)
                    and np.array_equal(result.scores, scores)
                    for items, scores in expected.values())
                if not matched:
                    failures.append(result)
                    stop.set()
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(3):  # keep swapping under the readers
            for store in stores[1:]:
                manager.swap(store)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures
        assert manager.version == 1 + 3 * (len(stores) - 1)
