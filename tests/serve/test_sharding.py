"""Tests for the sharded ranker: bit-parity with the single-shard
BatchRanker is the contract, at every shard count and query shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BatchRanker, EmbeddingStore, ShardedRanker
from repro.serve.ranker import interactions_to_csr

SHARD_COUNTS = (1, 2, 7)


@pytest.fixture()
def store(rng):
    # float32 store-path vectors, catalog larger than the small test
    # tile so sharding actually splits the grid
    num_users, num_items, dim = 40, 90, 8
    pairs = np.array([[u, rng.integers(num_items)] for u in range(num_users)
                      for _ in range(4)])
    return EmbeddingStore(
        rng.normal(size=(num_users, dim)),
        rng.normal(size=(num_items, dim)),
        seen=interactions_to_csr(pairs, num_users, num_items),
        is_cold=rng.random(num_items) < 0.3,
    )


def make_pair(store, num_shards, score_tile=16):
    """A BatchRanker and a ShardedRanker over the same store arrays,
    with a tile small enough that the grid really splits."""
    base = BatchRanker.from_store(store, block_size=7,
                                  score_tile=score_tile)
    sharded = ShardedRanker.from_store(store, num_shards=num_shards,
                                       block_size=7,
                                       score_tile=score_tile)
    return base, sharded


def assert_same(result_a, result_b):
    np.testing.assert_array_equal(result_a.items, result_b.items)
    np.testing.assert_array_equal(result_a.scores, result_b.scores)


class TestShardParity:
    """Every (candidates, mask_seen, extra_seen) combination, at shard
    counts 1/2/7, must be bit-identical to the single-shard ranker."""

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("with_candidates", (False, True))
    @pytest.mark.parametrize("mask_seen", (False, True))
    @pytest.mark.parametrize("with_extra", (False, True))
    def test_bit_identical(self, store, rng, num_shards, with_candidates,
                           mask_seen, with_extra):
        base, sharded = make_pair(store, num_shards)
        users = rng.integers(0, store.num_users, size=23)
        candidates = (rng.choice(store.num_items, size=61, replace=False)
                      if with_candidates else None)
        extra = ({int(u): [int(rng.integers(store.num_items))
                           for _ in range(3)] for u in users[:5]}
                 if with_extra else None)
        with sharded:
            assert_same(
                base.topk(users, 12, candidates=candidates,
                          mask_seen=mask_seen, extra_seen=extra),
                sharded.topk(users, 12, candidates=candidates,
                             mask_seen=mask_seen, extra_seen=extra))

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_bit_identical_with_heavy_ties(self, rng, num_shards):
        # Quantized scores tie everywhere, including across shard
        # boundaries: the merged-block kernel must make the same
        # choices as the single-shard one.
        users_mat = np.round(rng.normal(size=(20, 4)), 0).astype(np.float32)
        items_mat = np.round(rng.normal(size=(70, 4)), 0).astype(np.float32)
        base = BatchRanker(users_mat, items_mat, score_tile=8)
        with ShardedRanker(users_mat, items_mat, num_shards=num_shards,
                           score_tile=8) as sharded:
            assert_same(base.topk(np.arange(20), 9),
                        sharded.topk(np.arange(20), 9))

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_bit_identical_at_default_tile(self, rng, num_shards):
        # Catalog spanning several default-width tiles: the production
        # configuration, not just the shrunken test tile.
        users_mat = rng.normal(size=(6, 16)).astype(np.float32)
        items_mat = rng.normal(size=(3 * 4096 + 77, 16)).astype(np.float32)
        base = BatchRanker(users_mat, items_mat)
        with ShardedRanker(users_mat, items_mat,
                           num_shards=num_shards) as sharded:
            assert_same(base.topk(np.arange(6), 15),
                        sharded.topk(np.arange(6), 15))

    def test_cold_candidates_parity(self, store):
        base, sharded = make_pair(store, 7)
        with sharded:
            cold = store.cold_items()
            assert_same(base.topk(np.arange(10), 8, candidates=cold),
                        sharded.topk(np.arange(10), 8, candidates=cold))


class TestShardMechanics:
    def test_shard_ranges_cover_and_align(self, store):
        sharded = ShardedRanker.from_store(store, num_shards=7,
                                           score_tile=16)
        ranges = sharded.shard_ranges(store.num_items)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == store.num_items
        for (_, hi), (lo, _) in zip(ranges[:-1], ranges[1:]):
            assert hi == lo                      # contiguous, no gaps
        for lo, _ in ranges:
            assert lo % sharded.score_tile == 0  # tile-grid aligned

    def test_more_shards_than_tiles(self, rng):
        users_mat = rng.normal(size=(4, 4)).astype(np.float32)
        items_mat = rng.normal(size=(20, 4)).astype(np.float32)
        base = BatchRanker(users_mat, items_mat, score_tile=16)
        with ShardedRanker(users_mat, items_mat, num_shards=7,
                           score_tile=16) as sharded:
            assert len(sharded.shard_ranges(20)) == 2
            assert_same(base.topk(np.arange(4), 5),
                        sharded.topk(np.arange(4), 5))

    def test_single_shard_avoids_pool(self, store):
        sharded = ShardedRanker.from_store(store, num_shards=1,
                                           score_tile=16)
        sharded.topk(np.arange(5), 5)
        assert sharded._pool is None

    def test_close_is_idempotent(self, store):
        sharded = ShardedRanker.from_store(store, num_shards=3,
                                           score_tile=16)
        sharded.topk(np.arange(5), 5)
        assert sharded._pool is not None
        sharded.close()
        sharded.close()
        assert sharded._pool is None
        # usable again after close: the pool is rebuilt lazily
        sharded.topk(np.arange(5), 5)
        sharded.close()

    def test_invalid_shard_count_rejected(self, store):
        with pytest.raises(ValueError):
            ShardedRanker.from_store(store, num_shards=0)

    def test_scores_property_unchanged(self, store):
        base, sharded = make_pair(store, 4)
        with sharded:
            np.testing.assert_array_equal(base.scores(np.arange(8)),
                                          sharded.scores(np.arange(8)))
