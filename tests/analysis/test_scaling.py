"""Build-scaling measurement plumbing: probe, rows, RSS capture."""

from __future__ import annotations

import json

import pytest

from repro.analysis.timing import BuildScalingRow, peak_rss_mb


class TestPeakRss:
    def test_positive_and_monotonic(self):
        first = peak_rss_mb()
        assert first > 0
        assert peak_rss_mb() >= first


class TestBuildScalingRow:
    def _row(self, **overrides):
        base = dict(size="tiny", num_users=2000, num_items=1500,
                    interactions=38914, mode="chunked(65536)",
                    build_seconds=2.0, build_peak_rss_mb=100.0,
                    fingerprint="ab" * 8)
        base.update(overrides)
        return BuildScalingRow(**base)

    def test_throughput(self):
        assert self._row().interactions_per_second == pytest.approx(
            38914 / 2.0)

    def test_as_row_separates_build_rss_from_runtime_rss(self):
        cells = self._row().as_row()
        # both columns exist and mean different processes: the build
        # subprocess's peak vs the measuring process's own peak
        assert cells["Build peak RSS (MB)"] == 100.0
        assert cells["Peak RSS (MB)"] > 0
        assert cells["Mode"] == "chunked(65536)"
        assert cells["Fingerprint"] == "ab" * 8


class TestScaleProbe:
    def test_probe_reports_a_build(self, capsys):
        from repro.analysis.scale_probe import main
        assert main(["--size", "tiny", "--num-users", "300",
                     "--num-items", "200", "--chunk-rows", "64"]) == 0
        report = json.loads(
            capsys.readouterr().out.strip().splitlines()[-1])
        assert report["num_users"] == 300
        assert report["interactions"] > 0
        assert report["maxrss_mb"] > 0
        assert len(report["fingerprint"]) == 16

    def test_probe_modes_agree_on_content(self, capsys):
        from repro.analysis.scale_probe import main
        fingerprints = []
        for extra in ([], ["--chunk-rows", "97"]):
            assert main(["--size", "tiny", "--num-users", "300",
                         "--num-items", "200", *extra]) == 0
            out = capsys.readouterr().out.strip().splitlines()[-1]
            fingerprints.append(json.loads(out)["fingerprint"])
        assert fingerprints[0] == fingerprints[1]
