"""Tests for the from-scratch t-SNE and the Fig. 8 statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tsne import (centroid_distance_ratio,
                                 distribution_overlap, tsne)


@pytest.fixture(scope="module")
def clustered_points():
    rng = np.random.default_rng(0)
    a = rng.normal(0.0, 0.3, size=(30, 10))
    b = rng.normal(0.0, 0.3, size=(30, 10)) + 4.0
    return np.concatenate([a, b])


class TestTsne:
    def test_output_shape(self, clustered_points):
        result = tsne(clustered_points, num_iters=100, seed=0)
        assert result.embedding.shape == (60, 2)
        assert np.isfinite(result.embedding).all()

    def test_separates_clusters(self, clustered_points):
        result = tsne(clustered_points, num_iters=200, seed=0)
        y = result.embedding
        within_a = np.linalg.norm(
            y[:30] - y[:30].mean(axis=0), axis=1).mean()
        gap = np.linalg.norm(y[:30].mean(axis=0) - y[30:].mean(axis=0))
        assert gap > within_a

    def test_kl_divergence_decreases_with_iterations(self, clustered_points):
        short = tsne(clustered_points, num_iters=60, seed=0).kl_divergence
        long = tsne(clustered_points, num_iters=250, seed=0).kl_divergence
        assert long <= short + 1e-6

    def test_deterministic(self, clustered_points):
        a = tsne(clustered_points, num_iters=50, seed=3).embedding
        b = tsne(clustered_points, num_iters=50, seed=3).embedding
        np.testing.assert_allclose(a, b)

    def test_small_input(self):
        rng = np.random.default_rng(1)
        result = tsne(rng.normal(size=(8, 4)), num_iters=50)
        assert result.embedding.shape == (8, 2)


class TestOverlapStatistics:
    def test_identical_clouds_high_overlap(self, rng):
        points = rng.normal(size=(100, 2))
        overlap = distribution_overlap(points, points.copy())
        assert overlap > 0.9

    def test_disjoint_clouds_low_overlap(self, rng):
        a = rng.normal(0, 0.2, size=(100, 2))
        b = rng.normal(0, 0.2, size=(100, 2)) + 10.0
        assert distribution_overlap(a, b) < 0.1

    def test_centroid_ratio_orders_separation(self, rng):
        a = rng.normal(size=(50, 2))
        near = rng.normal(size=(50, 2)) + 0.5
        far = rng.normal(size=(50, 2)) + 8.0
        assert centroid_distance_ratio(a, near) \
            < centroid_distance_ratio(a, far)
