"""Tests for embedding-space diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.embedding_stats import (alignment, cold_warm_stats,
                                            uniformity,
                                            user_item_alignment)


class TestAlignment:
    def test_identical_pairs_zero(self, rng):
        x = rng.normal(size=(20, 8))
        assert alignment(x, x.copy()) == pytest.approx(0.0)

    def test_opposite_pairs_maximal(self, rng):
        x = rng.normal(size=(20, 8))
        assert alignment(x, -x) == pytest.approx(4.0)

    def test_random_pairs_around_two(self, rng):
        a = rng.normal(size=(500, 16))
        b = rng.normal(size=(500, 16))
        assert 1.6 < alignment(a, b) < 2.4


class TestUniformity:
    def test_uniform_more_negative_than_collapsed(self, rng):
        spread = rng.normal(size=(200, 8))
        collapsed = np.ones((200, 8)) + 0.01 * rng.normal(size=(200, 8))
        assert uniformity(spread) < uniformity(collapsed)

    def test_deterministic(self, rng):
        x = rng.normal(size=(50, 4))
        assert uniformity(x, seed=1) == uniformity(x, seed=1)


class TestColdWarmStats:
    def test_id_model_signature(self, rng):
        """Small random cold vectors vs trained warm vectors: norm ratio
        far below one (the LightGCN signature in Fig. 8)."""
        warm = rng.normal(size=(80, 8)) * 2.0
        cold = rng.normal(size=(20, 8)) * 0.05
        emb = np.concatenate([warm, cold])
        is_cold = np.zeros(100, dtype=bool)
        is_cold[80:] = True
        stats = cold_warm_stats(emb, is_cold)
        assert stats.norm_ratio < 0.2
        assert stats.cold_norm_mean < stats.warm_norm_mean

    def test_mixed_model_signature(self, rng):
        """Cold vectors drawn from the warm distribution: ratio near one
        and positive cross-cosine structure (the Firzen signature)."""
        base = rng.normal(size=(1, 8))
        warm = base + 0.3 * rng.normal(size=(80, 8))
        cold = base + 0.3 * rng.normal(size=(20, 8))
        emb = np.concatenate([warm, cold])
        is_cold = np.zeros(100, dtype=bool)
        is_cold[80:] = True
        stats = cold_warm_stats(emb, is_cold)
        assert 0.7 < stats.norm_ratio < 1.4
        assert stats.centroid_cosine > 0.8
        assert stats.mean_cross_cosine > 0.3

    def test_on_trained_models(self, tiny_dataset):
        """Firzen's cold/warm norm ratio exceeds LightGCN's."""
        from repro.baselines import create_model
        from repro.train import TrainConfig, train_model
        config = TrainConfig(epochs=3, eval_every=3, batch_size=128,
                             learning_rate=0.05)
        ratios = {}
        for name in ("LightGCN", "Firzen"):
            model = create_model(name, tiny_dataset, embedding_dim=16,
                                 seed=0)
            train_model(model, tiny_dataset, config)
            stats = cold_warm_stats(model.item_embeddings(),
                                    tiny_dataset.split.is_cold)
            ratios[name] = stats.norm_ratio
        assert ratios["Firzen"] > ratios["LightGCN"]


class TestUserItemAlignment:
    def test_trained_model_aligns_better_than_fresh(self, tiny_dataset):
        from repro.baselines import create_model
        from repro.train import TrainConfig, train_model
        fresh = create_model("BPR", tiny_dataset, embedding_dim=16, seed=0)
        fresh_alignment = user_item_alignment(fresh, tiny_dataset.split)
        trained = create_model("BPR", tiny_dataset, embedding_dim=16,
                               seed=0)
        train_model(trained, tiny_dataset,
                    TrainConfig(epochs=6, eval_every=6, batch_size=128,
                                learning_rate=0.05))
        trained_alignment = user_item_alignment(trained,
                                                tiny_dataset.split)
        assert trained_alignment < fresh_alignment
