"""Tests for the Fig. 7 case study and Table VII timing harnesses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.case_study import (run_case_study,
                                       similar_items_under_subset)
from repro.analysis.timing import (measure_feature_sets,
                                   measure_serving_latency,
                                   measure_training_throughput,
                                   synthetic_serving_store)
from repro.core import FirzenModel
from repro.train import TrainConfig, train_model


@pytest.fixture(scope="module")
def firzen(tiny_dataset):
    model = FirzenModel(tiny_dataset, embedding_dim=16,
                        rng=np.random.default_rng(0))
    train_model(model, tiny_dataset,
                TrainConfig(epochs=2, eval_every=2, batch_size=128))
    return model


class TestCaseStudy:
    def test_all_subsets_return_k_items(self, firzen, tiny_dataset):
        for subset in ("modality", "kg", "complete"):
            result = similar_items_under_subset(
                firzen, tiny_dataset, query=0, subset=subset, k=5)
            assert len(result.items) == 5
            assert 0 not in result.items  # query excluded

    def test_diversity_and_purity_in_range(self, firzen, tiny_dataset):
        result = similar_items_under_subset(
            firzen, tiny_dataset, query=3, subset="complete", k=5)
        assert 0.0 < result.brand_diversity <= 1.0
        assert 0.0 <= result.category_purity <= 1.0

    def test_run_case_study_covers_all(self, firzen, tiny_dataset):
        results = run_case_study(firzen, tiny_dataset, queries=[0, 1], k=3)
        assert len(results) == 6  # 2 queries x 3 subsets
        assert {r.subset for r in results} \
            == {"modality", "kg", "complete"}

    def test_unknown_subset_raises(self, firzen, tiny_dataset):
        with pytest.raises(ValueError):
            similar_items_under_subset(firzen, tiny_dataset, 0, "audio")


class TestTiming:
    def test_rows_and_monotone_training_cost(self, tiny_dataset):
        rows = measure_feature_sets(
            tiny_dataset,
            TrainConfig(epochs=1, eval_every=1, batch_size=256))
        labels = [r.label for r in rows]
        assert labels == ["BA", "BA+KA", "BA+KA+VA", "BA+KA+VA+TA"]
        for row in rows:
            assert row.train_seconds > 0
            assert row.cold_inference_ms_per_user > 0
            assert row.warm_inference_ms_per_user > 0
        # Adding the knowledge graph must increase training cost (the
        # paper's headline Table VII observation).
        assert rows[1].train_seconds > rows[0].train_seconds


class TestTrainingThroughput:
    def test_measures_both_schedules(self, tiny_dataset):
        rows = measure_training_throughput(
            tiny_dataset, model_names=("LightGCN",), epochs=2,
            embedding_dim=16,
            train_config=TrainConfig(batch_size=256, learning_rate=0.05))
        (row,) = rows
        assert row.model == "LightGCN"
        assert row.epochs == 2
        assert row.engine_epochs_per_second > 0
        assert row.layerwise_epochs_per_second > 0
        assert row.fold_speedup > 0
        cells = row.as_row()
        assert cells["Model"] == "LightGCN"
        assert set(cells) == {"Model", "Epochs", "Engine (epochs/s)",
                              "Layer-by-layer (epochs/s)", "Fold speedup",
                              "Backend", "Param dtype", "BLAS threads",
                              "Peak RSS (MB)"}
        assert cells["Peak RSS (MB)"] > 0
        # Runtime context is captured at measurement time.
        assert cells["Backend"] == "reference"
        assert cells["Param dtype"] == "float64"

    def test_restores_engine_fold_configuration(self, tiny_dataset):
        from repro import engine
        before = engine.get_engine().fold
        measure_training_throughput(
            tiny_dataset, model_names=("LightGCN",), epochs=1,
            embedding_dim=16,
            train_config=TrainConfig(batch_size=256))
        assert engine.get_engine().fold == before


class TestServingLatency:
    def test_synthetic_store_shape(self):
        store = synthetic_serving_store(num_users=30, num_items=80, dim=8,
                                        seed=3)
        assert store.num_users == 30 and store.num_items == 80
        assert 0 < store.is_cold.sum() < 80
        assert store.seen.nnz > 0
        assert store.modalities == ("image",)
        # deterministic for a given seed
        again = synthetic_serving_store(num_users=30, num_items=80, dim=8,
                                        seed=3)
        np.testing.assert_array_equal(store.item_vectors,
                                      again.item_vectors)

    def test_measure_serving_latency_rows(self):
        store = synthetic_serving_store(num_users=40, num_items=200, dim=8,
                                        seed=1)
        rows = measure_serving_latency(
            store, clients=2, requests_per_client=4, k=5,
            shard_counts=(1, 2), repeats=1, measure_ingest=True, seed=1)
        scenarios = [(r.scenario, r.num_shards) for r in rows]
        assert scenarios == [("topk under load", 1), ("topk under load", 2),
                             ("ingest under load", 1)]
        for row in rows:
            assert row.requests == 8
            assert 0 < row.p50_ms <= row.p99_ms
            assert row.requests_per_second > 0
            assert row.sequential_requests_per_second > 0
            assert row.speedup > 0
            assert row.mean_batch_size >= 1
            cells = row.as_row()
            assert cells["Scenario"] == row.scenario
            assert "Backend" in cells and "BLAS threads" in cells
            assert cells["Peak RSS (MB)"] > 0
        assert rows[-1].ingests > 0
