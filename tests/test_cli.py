"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "BPR"])
        assert args.model == "BPR"
        assert args.dataset == "beauty"
        assert args.epochs == 12

    def test_compare_accepts_multiple(self):
        args = build_parser().parse_args(
            ["compare", "BPR", "LightGCN", "--epochs", "2"])
        assert args.models == ["BPR", "LightGCN"]
        assert args.epochs == 2


class TestCommands:
    def test_models_lists_roster(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("BPR", "KGAT", "Firzen", "MWUF", "Random"):
            assert name in out

    def test_datasets_tiny(self, capsys):
        assert main(["datasets", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "amazon-beauty" in out
        assert "weixin-sports" in out

    def test_train_and_evaluate_roundtrip(self, capsys, tmp_path):
        ckpt = str(tmp_path / "bpr.npz")
        code = main(["train", "BPR", "--size", "tiny", "--epochs", "2",
                     "--embedding-dim", "8", "--checkpoint", ckpt])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cold" in out and "Warm" in out and "HM" in out

        code = main(["evaluate", ckpt, "--embedding-dim", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BPR" in out

    def test_compare_command(self, capsys):
        code = main(["compare", "BPR", "MostPopular", "--size", "tiny",
                     "--epochs", "1", "--embedding-dim", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MostPopular" in out
