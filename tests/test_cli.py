"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "BPR"])
        assert args.model == "BPR"
        assert args.dataset == "beauty"
        assert args.epochs == 12

    def test_compare_accepts_multiple(self):
        args = build_parser().parse_args(
            ["compare", "BPR", "LightGCN", "--epochs", "2"])
        assert args.models == ["BPR", "LightGCN"]
        assert args.epochs == 2

    def test_export_embeddings_defaults(self):
        args = build_parser().parse_args(["export-embeddings", "out.npz"])
        assert args.out == "out.npz"
        assert args.model == "Firzen"
        assert args.checkpoint is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "s.npz"])
        assert args.store == "s.npz"
        assert args.queries is None
        assert args.block_size == 1024

    def test_bench_forward_flags(self):
        args = build_parser().parse_args(
            ["bench", "--forward-compare", "--models", "Firzen",
             "--min-forward-speedup", "0.9"])
        assert args.forward_compare and args.min_forward_speedup == 0.9

    def test_min_forward_speedup_requires_forward_compare(self):
        assert main(["bench", "--min-forward-speedup", "1.0"]) == 2

    def test_forward_and_sparse_compare_conflict(self):
        assert main(["bench", "--forward-compare",
                     "--sparse-compare"]) == 2

    def test_serve_store_and_checkpoint_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--store", "s.npz",
                                       "--checkpoint", "c.npz"])

    def test_export_format_flag(self):
        args = build_parser().parse_args(["export-embeddings", "out"])
        assert args.format == "v1"
        args = build_parser().parse_args(
            ["export-embeddings", "out", "--format", "v2"])
        assert args.format == "v2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["export-embeddings", "out", "--format", "v3"])

    def test_serve_daemon_flags(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--daemon", "--port", "0",
             "--num-shards", "4", "--mmap", "--max-delay-ms", "1.5"])
        assert args.daemon and args.mmap
        assert args.num_shards == 4 and args.port == 0
        assert args.max_delay_ms == 1.5

    def test_serve_mmap_requires_store(self):
        assert main(["serve", "--mmap"]) == 2

    def test_bench_serving_latency_flags(self):
        args = build_parser().parse_args(
            ["bench", "--serving-latency", "--min-serving-speedup", "1.0",
             "--shard-counts", "1", "2", "--serving-scale", "0.5"])
        assert args.serving_latency
        assert args.shard_counts == [1, 2]
        assert args.min_serving_speedup == 1.0

    def test_serving_flags_require_serving_latency(self):
        assert main(["bench", "--min-serving-speedup", "1.0"]) == 2
        assert main(["bench", "--clients", "4"]) == 2
        assert main(["bench", "--shard-counts", "2"]) == 2
        assert main(["bench", "--serving-scale", "0.5"]) == 2

    def test_serving_latency_conflicts_with_other_compares(self):
        assert main(["bench", "--serving-latency",
                     "--sparse-compare"]) == 2


class TestCommands:
    def test_models_lists_roster(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("BPR", "KGAT", "Firzen", "MWUF", "Random"):
            assert name in out

    def test_datasets_tiny(self, capsys):
        assert main(["datasets", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "amazon-beauty" in out
        assert "weixin-sports" in out

    def test_train_and_evaluate_roundtrip(self, capsys, tmp_path):
        ckpt = str(tmp_path / "bpr.npz")
        code = main(["train", "BPR", "--size", "tiny", "--epochs", "2",
                     "--embedding-dim", "8", "--checkpoint", ckpt])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cold" in out and "Warm" in out and "HM" in out

        code = main(["evaluate", ckpt, "--embedding-dim", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BPR" in out

    def test_compare_command(self, capsys):
        code = main(["compare", "BPR", "MostPopular", "--size", "tiny",
                     "--epochs", "1", "--embedding-dim", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MostPopular" in out

    def test_export_from_checkpoint_preserves_seed(self, capsys, tmp_path):
        ckpt = str(tmp_path / "model.npz")
        assert main(["train", "BPR", "--size", "tiny", "--epochs", "1",
                     "--embedding-dim", "8", "--seed", "5",
                     "--checkpoint", ckpt]) == 0
        out_path = str(tmp_path / "store.npz")
        assert main(["export-embeddings", out_path, "--checkpoint", ckpt,
                     "--embedding-dim", "8"]) == 0
        from repro.serve import EmbeddingStore
        assert EmbeddingStore.load(out_path).metadata["seed"] == 5

    def test_export_then_serve_with_ingest(self, capsys, tmp_path):
        store_path = str(tmp_path / "store.npz")
        code = main(["export-embeddings", store_path, "--model", "BPR",
                     "--size", "tiny", "--epochs", "1",
                     "--embedding-dim", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "store written to" in out

        # Build a feature archive for one brand-new item (a twin of a
        # warm item so its placement is meaningful), then drive the
        # file-based serve mode: stats, topk, ingest, cold query.
        from repro.serve import EmbeddingStore
        store = EmbeddingStore.load(store_path)
        target = int(store.warm_items()[0])
        features_path = tmp_path / "new_items.npz"
        np.savez(features_path, **{m: store.features[m][target][None, :]
                                   for m in store.modalities})
        queries = tmp_path / "queries.txt"
        queries.write_text(
            f"stats\ntopk 0 5\ningest {features_path}\n"
            f"cold 0 {store.num_items}\nquit\nnever-reached\n")
        code = main(["serve", "--store", store_path,
                     "--queries", str(queries)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 1 item(s)" in out
        # The onboarded item id appears in the cold-candidate ranking.
        assert f" {store.num_items}:" in out.splitlines()[-1]

    def test_export_v2_then_serve_mmap_sharded(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store_v2")
        assert main(["export-embeddings", store_dir, "--model", "BPR",
                     "--size", "tiny", "--epochs", "1",
                     "--embedding-dim", "8", "--format", "v2"]) == 0
        out = capsys.readouterr().out
        assert "format v2" in out

        queries = tmp_path / "queries.txt"
        queries.write_text("stats\ntopk 0 5\nquit\n")
        assert main(["serve", "--store", store_dir, "--mmap",
                     "--num-shards", "2",
                     "--queries", str(queries)]) == 0
        sharded_out = capsys.readouterr().out
        assert "user 0 ->" in sharded_out

        # bit-for-bit the same rankings as the plain in-RAM path
        assert main(["serve", "--store", store_dir,
                     "--queries", str(queries)]) == 0
        plain_out = capsys.readouterr().out
        assert sharded_out.splitlines()[-1] == plain_out.splitlines()[-1]
