"""Backend op unit grid (ISSUE 7 satellite).

Every primitive an :class:`repro.backend.base.ArrayBackend` owns is
checked against the plain-numpy reference expression it abstracts:

* the **reference** backend must match *bit for bit* — it is the
  bit-exactness contract's foundation, so ``np.array_equal`` with no
  tolerance;
* the **fast** backend must match within dtype-appropriate epsilon in
  both float32 and float64 — whatever kernels it dispatches to (plain
  BLAS here; torch/cupy where importable) may round differently but
  never drift.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backend import available_backends, get_backend

BACKENDS = tuple(available_backends())


def _rtol(backend, dtype) -> float:
    if backend.name == "reference":
        return 0.0
    return 1e-5 if np.dtype(dtype) == np.float32 else 1e-12


def _check(backend, got, want, dtype):
    rtol = _rtol(backend, dtype)
    if rtol == 0.0:
        assert np.array_equal(got, want), (
            f"{backend.name} backend is not bit-identical to numpy")
    else:
        np.testing.assert_allclose(got, want, rtol=rtol, atol=rtol)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return get_backend(request.param)


@pytest.fixture(params=(np.float32, np.float64))
def dtype(request):
    return request.param


def _rand(rng, shape, dtype):
    return rng.standard_normal(shape).astype(dtype)


class TestDenseOps:
    def test_matmul(self, backend, dtype, rng):
        a, b = _rand(rng, (17, 9), dtype), _rand(rng, (9, 13), dtype)
        _check(backend, backend.matmul(a, b), a @ b, dtype)

    def test_matmul_large_enough_to_dispatch(self, backend, rng):
        # Crosses the fast tier's flops threshold so the torch/cupy
        # paths (when importable) actually engage; plain hosts take the
        # numpy path and the assertion still holds.
        a = _rand(rng, (128, 96), np.float32)
        b = _rand(rng, (96, 128), np.float32)
        _check(backend, backend.matmul(a, b), a @ b, np.float32)

    def test_matmul_out(self, backend, dtype, rng):
        a, b = _rand(rng, (11, 7), dtype), _rand(rng, (7, 5), dtype)
        out = np.empty((11, 5), dtype=dtype)
        result = backend.matmul_out(a, b, out)
        assert result is out
        _check(backend, out, a @ b, dtype)

    def test_elementwise(self, backend, dtype, rng):
        x = _rand(rng, (6, 8), dtype)
        _check(backend, backend.exp(x), np.exp(x), dtype)
        _check(backend, backend.tanh(x), np.tanh(x), dtype)
        positive = np.abs(x) + dtype(0.5)
        _check(backend, backend.log(positive), np.log(positive), dtype)
        _check(backend, backend.sqrt(positive), np.sqrt(positive), dtype)

    def test_sigmoid_matches_clipped_expression(self, backend, dtype, rng):
        # The historical expression, including the +-60 clip that makes
        # extreme logits exact 0/1 instead of overflowing.
        x = _rand(rng, (40,), dtype) * dtype(50.0)
        want = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        _check(backend, backend.sigmoid(x), want, dtype)

    def test_gather_rows(self, backend, dtype, rng):
        table = _rand(rng, (20, 6), dtype)
        indices = rng.integers(0, 20, size=33)
        _check(backend, backend.gather_rows(table, indices),
               table[indices], dtype)


class TestSparseOps:
    def test_spmm_and_transpose(self, backend, dtype, rng):
        matrix = sp.random(14, 10, density=0.3, random_state=7,
                           format="csr", dtype=np.float64).astype(dtype)
        x = _rand(rng, (10, 4), dtype)
        g = _rand(rng, (14, 4), dtype)
        _check(backend, backend.spmm(matrix, x), matrix @ x, dtype)
        _check(backend, backend.spmm_t(matrix, g), matrix.T @ g, dtype)

    @pytest.mark.parametrize("num_rows", (5, 500))
    def test_bincount_rows(self, backend, dtype, rng, num_rows):
        # num_rows=500 with 25 gathered rows crosses the fast tier's
        # segment-sum heuristic; num_rows=5 stays on the bincount path.
        inverse = rng.integers(0, 5, size=25)
        values = _rand(rng, (25, 3), dtype)
        flat = (inverse[:, None] * 3 + np.arange(3)[None, :]).ravel()
        want = np.bincount(flat, weights=values.ravel(),
                           minlength=num_rows * 3).reshape(num_rows, 3)
        got = backend.bincount_rows(inverse, values, num_rows, 3)
        _check(backend, got, want, dtype)


class TestDescribe:
    def test_describe_names_the_tier(self, backend):
        info = backend.describe()
        assert info["backend"] == backend.name
        assert "accelerated" in info

    def test_fast_reports_dispatch_flags(self):
        info = get_backend("fast").describe()
        # torch/cupy are absent in the baked image; the flags must say
        # so honestly rather than erroring.
        assert info["torch"] in (True, False)
        assert info["cupy"] in (True, False)
