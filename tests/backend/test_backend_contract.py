"""Backend selection contract: registry, env toggle, content addresses.

Mirrors the REPRO_TAPE contract tests: the ``REPRO_BACKEND``
*environment* override is address-neutral (it must never fracture the
artifact store), while a backend *pinned on the spec* always enters the
train content address because the fast tier is tolerance-parity, not
bit-parity. Golden fingerprints refuse to run off-reference outright.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (active, available_backends, backend_mode,
                           blas_thread_count, get_backend, runtime_info)
from repro.experiments import ExperimentSpec
from repro.train import TrainConfig

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "golden"))
import protocol  # noqa: E402  (tests/golden/protocol.py)


def _spec(**overrides) -> ExperimentSpec:
    base = dict(name="t", dataset="beauty", size="tiny", models=("BPR",),
                train=TrainConfig(epochs=2, eval_every=1))
    base.update(overrides)
    return ExperimentSpec(**base)


class TestRegistry:
    def test_reference_is_the_default(self):
        assert set(available_backends()) == {"reference", "fast"}
        assert active().name == "reference"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu-magic")

    def test_instances_are_cached(self):
        assert get_backend("fast") is get_backend("fast")

    def test_tier_properties(self):
        reference, fast = get_backend("reference"), get_backend("fast")
        assert not reference.accelerated and not reference.pooled_replay
        assert reference.param_dtype is None
        assert fast.accelerated and fast.pooled_replay
        assert fast.param_dtype == np.float32


class TestBackendMode:
    def test_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with backend_mode("fast"):
            assert os.environ["REPRO_BACKEND"] == "fast"
            assert active().name == "fast"
        assert "REPRO_BACKEND" not in os.environ
        assert active().name == "reference"

    def test_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        with backend_mode("fast"):
            pass
        assert os.environ["REPRO_BACKEND"] == "reference"

    def test_rejects_unknown_names_up_front(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with backend_mode("nope"):
                pass  # pragma: no cover - must not enter


class TestContentAddresses:
    def test_env_override_is_address_neutral(self, monkeypatch):
        # Same contract as REPRO_TAPE: the env override is an execution
        # detail, so cached reference artifacts stay addressable.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        key = _spec().train_key("BPR")
        with backend_mode("fast"):
            assert _spec().train_key("BPR") == key

    def test_pinned_backend_enters_the_address(self):
        base, fast = _spec(), _spec(backend="fast")
        assert fast.train_key("BPR") != base.train_key("BPR")
        # ... even pinning the default tier: pinned-reference promises
        # bit-exact artifacts, unpinned merely defaults to them
        assert _spec(backend="reference").train_key("BPR") != \
            base.train_key("BPR")

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            _spec(backend="gpu-magic")


class TestGoldenGuard:
    def test_goldens_refuse_the_fast_tier(self):
        with backend_mode("fast"):
            with pytest.raises(RuntimeError, match="reference-backend"):
                protocol.require_reference_backend()

    def test_goldens_accept_the_reference_tier(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        protocol.require_reference_backend()


class TestRuntimeInfo:
    def test_reference_record(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        info = runtime_info()
        assert info == {"backend": "reference", "param_dtype": "float64",
                        "blas_threads": info["blas_threads"]}
        assert info["blas_threads"] >= 1

    def test_fast_record(self):
        with backend_mode("fast"):
            info = runtime_info()
        assert info["backend"] == "fast"
        assert info["param_dtype"] == "float32"

    def test_blas_thread_count_is_positive(self):
        assert blas_thread_count() >= 1
