"""Tolerance-tiered fast-vs-reference training parity (ISSUE 7).

The fast tier is *not* bit-exact — float32 parameters, accelerated
kernels — so its contract is metric closeness, pinned here per model:
train every roster model on the tiny world under both backends and
assert ranking metrics agree within a per-model absolute tolerance.
(On the tiny world the discrete rankings typically coincide exactly;
the tolerances leave honest headroom for real accelerators.)

Also pins the one bit-level fact the fast tier *does* guarantee:
pooled tape replay changes allocation, not arithmetic, so fast+tape
equals fast+no-tape bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import backend_mode
from repro.baselines import create_model
from repro.engine.plan import tape_mode
from repro.eval import evaluate_model
from repro.train import TrainConfig, train_model
from repro.train.fingerprint import training_fingerprint

#: absolute tolerance on every ranking metric, per model — float32
#: params admit tiny score reorderings, nothing more
TOLERANCES = {"BPR": 0.05, "LightGCN": 0.05, "KGAT": 0.08, "Firzen": 0.08}


def _train_config() -> TrainConfig:
    return TrainConfig(epochs=2, eval_every=1, batch_size=64,
                       learning_rate=0.05, patience=10, seed=0)


def _metrics(model_name: str, dataset, backend: str) -> dict[str, float]:
    with backend_mode(backend):
        model = create_model(model_name, dataset, embedding_dim=8, seed=0)
        train_model(model, dataset, _train_config())
        bundle = evaluate_model(model, dataset.split, k=10)
    return {
        "cold_recall": bundle.cold.recall,
        "cold_ndcg": bundle.cold.ndcg,
        "warm_recall": bundle.warm.recall,
        "warm_ndcg": bundle.warm.ndcg,
    }


@pytest.mark.parametrize("model_name", sorted(TOLERANCES))
def test_fast_metrics_close_to_reference(model_name, tiny_dataset):
    reference = _metrics(model_name, tiny_dataset, "reference")
    fast = _metrics(model_name, tiny_dataset, "fast")
    atol = TOLERANCES[model_name]
    for name, ref_value in reference.items():
        delta = abs(ref_value - fast[name])
        assert delta <= atol, (
            f"{model_name} {name}: reference={ref_value:.6f} "
            f"fast={fast[name]:.6f} |delta|={delta:.6f} > {atol}")


def test_fast_params_are_float32(tiny_dataset):
    with backend_mode("fast"):
        model = create_model("BPR", tiny_dataset, embedding_dim=8, seed=0)
    assert all(p.data.dtype == np.float32 for p in model.parameters())
    with backend_mode("reference"):
        model = create_model("BPR", tiny_dataset, embedding_dim=8, seed=0)
    assert all(p.data.dtype == np.float64 for p in model.parameters())


@pytest.mark.parametrize("model_name", ("BPR", "LightGCN"))
def test_fast_pooled_tape_replay_is_bit_exact(model_name, tiny_dataset):
    # Pooled buffers reuse memory across steps but every accumulation
    # is the same IEEE sum in the same order — so the tape path must
    # reproduce the eager fast path exactly, not just approximately.
    def fingerprint(tape: bool):
        with backend_mode("fast"), tape_mode(tape):
            model = create_model(model_name, tiny_dataset,
                                 embedding_dim=8, seed=0)
            result = train_model(model, tiny_dataset, _train_config())
            return training_fingerprint(model, result)

    assert fingerprint(True) == fingerprint(False)
