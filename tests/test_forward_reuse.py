"""Forward-reuse memo parity: cache on vs ``REPRO_FORWARD_CACHE=0``.

The contract (docs/ARCHITECTURE.md, "Forward versioning and reuse"):
with the memo enabled, every training run produces bit-identical
trained parameters, loss curves, evaluation metrics, and RNG stream
positions to the uncached path — a memo hit returns exactly the arrays
a recomputation would have produced, and fast-forwards any recorded RNG
draws so downstream consumption is unchanged.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.forward_cache import ForwardMemo
from repro.autograd.nn import Embedding, Module
from repro.autograd.optim import Adam
from repro.baselines import create_model
from repro.core.config import FirzenConfig
from repro.core.firzen import FirzenModel
from repro.data import load_amazon
from repro.eval import evaluate_model
from repro.train.trainer import TrainConfig, train_model


@pytest.fixture(scope="module")
def dataset():
    return load_amazon("beauty", size="tiny")


class _CacheMode:
    def __init__(self, enabled: bool):
        self.enabled = enabled

    def __enter__(self):
        self.prev = os.environ.get("REPRO_FORWARD_CACHE")
        os.environ["REPRO_FORWARD_CACHE"] = "1" if self.enabled else "0"

    def __exit__(self, *exc):
        if self.prev is None:
            os.environ.pop("REPRO_FORWARD_CACHE", None)
        else:
            os.environ["REPRO_FORWARD_CACHE"] = self.prev


def _rng_positions(model) -> list:
    """Every generator the model owns, by exact stream position."""
    positions = []
    for attr in ("_kg_rng", "_disc_rng", "rng"):
        rng = getattr(model, attr, None)
        if rng is not None:
            positions.append((attr, repr(rng.bit_generator.state)))
    encoders = getattr(model, "modality_encoders", None) or {}
    for name, encoder in encoders.items():
        positions.append(
            (f"drop:{name}", repr(encoder._drop_rng.bit_generator.state)))
    return positions


def _train_fingerprint(dataset, name: str, cache: bool, config=None):
    with _CacheMode(cache):
        if name == "Firzen" and config is not None:
            model = FirzenModel(dataset, config.embedding_dim,
                                np.random.default_rng(0), config=config)
        else:
            model = create_model(name, dataset, seed=0)
        result = train_model(model, dataset,
                             TrainConfig(epochs=2, eval_every=3, seed=0))
        metrics = evaluate_model(model, dataset.split, k=10)
        return (model.state_dict(), result.losses, _rng_positions(model),
                (metrics.cold.recall, metrics.cold.mrr,
                 metrics.warm.recall, metrics.warm.mrr))


CONFIGS = [
    ("KGAT", None),
    ("Firzen", None),
    ("Firzen-noMSHGL", FirzenConfig(embedding_dim=16, use_mshgl=False)),
    ("Firzen-noKA", FirzenConfig(embedding_dim=16, use_knowledge=False)),
    ("Firzen-noMA", FirzenConfig(embedding_dim=16, use_modality=False)),
]


@pytest.mark.parametrize("label,config", CONFIGS,
                         ids=[label for label, _ in CONFIGS])
def test_training_parity_cache_on_vs_off(dataset, label, config):
    name = "Firzen" if label.startswith("Firzen") else label
    state_on, losses_on, rng_on, metrics_on = _train_fingerprint(
        dataset, name, True, config)
    state_off, losses_off, rng_off, metrics_off = _train_fingerprint(
        dataset, name, False, config)
    assert losses_on == losses_off
    assert rng_on == rng_off
    assert metrics_on == metrics_off
    assert state_on.keys() == state_off.keys()
    for key in state_on:
        assert np.array_equal(state_on[key], state_off[key]), key


class TestVersionCounters:
    def test_optimizer_step_bumps_only_updated_params(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 3)), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        a.grad = np.ones((4, 3))
        before_a, before_b = a._version, b._version
        opt.step()
        assert a._version == before_a + 1
        assert b._version == before_b          # no grad, no bump

    def test_sparse_deferred_step_bumps_at_step_time(self):
        emb = Embedding(50, 4, np.random.default_rng(0))
        opt = Adam(emb.parameters(), lr=0.1, sparse=True)
        before = emb.weight._version
        out = emb(np.array([1, 2, 3]))
        out.sum().backward()
        opt.step()
        assert emb.weight._version == before + 1
        opt.release()

    def test_load_state_dict_bumps(self):
        emb = Embedding(5, 3, np.random.default_rng(0))
        state = emb.state_dict()
        before = emb.weight._version
        emb.load_state_dict(state)
        assert emb.weight._version == before + 1


class _CountingModule(Module):
    def __init__(self, param):
        super().__init__()
        self.param = param
        self.computes = 0

    def forward(self):
        return self.memoized("out", [self.param], self._compute)

    def _compute(self):
        self.computes += 1
        return self.param * 2.0


class TestMemoMechanics:
    def test_hit_while_version_unchanged(self):
        module = _CountingModule(Tensor(np.ones((3, 2)),
                                        requires_grad=True))
        first = module()
        second = module()
        assert second is first
        assert module.computes == 1

    def test_version_bump_invalidates(self):
        module = _CountingModule(Tensor(np.ones((3, 2)),
                                        requires_grad=True))
        module()
        module.param.bump_version()
        module()
        assert module.computes == 2

    def test_bump_memos_invalidates(self):
        module = _CountingModule(Tensor(np.ones((3, 2)),
                                        requires_grad=True))
        module()
        module.bump_memos()
        module()
        assert module.computes == 2

    def test_escape_hatch_disables_lookups(self):
        with _CacheMode(False):
            module = _CountingModule(Tensor(np.ones((3, 2)),
                                            requires_grad=True))
            module()
            module()
            assert module.computes == 2

    def test_rng_hit_fast_forwards_stream(self):
        memo = ForwardMemo()
        rng = np.random.default_rng(7)
        pre_state = rng.bit_generator.state

        def compute():
            return rng.random(5)

        deps: list = []
        first = memo.cached("draw", deps, compute, rng=rng)
        post_state = repr(rng.bit_generator.state)
        # Rewind to the recorded pre-state: the uncached path would now
        # redraw the same numbers; a hit must fast-forward instead.
        rng.bit_generator.state = pre_state
        second = memo.cached("draw", deps, compute, rng=rng)
        assert second is first
        assert repr(rng.bit_generator.state) == post_state
        # At the *advanced* position the entry no longer matches: the
        # uncached path would draw different numbers, so it recomputes.
        third = memo.cached("draw", deps, compute, rng=rng)
        assert third is not first
        assert not np.array_equal(third, first)


class TestStructureInvalidation:
    def test_adapt_to_interactions_recomputes(self, dataset):
        model = create_model("Firzen", dataset, seed=0)
        model.refresh()
        users_before = model.user_matrix().copy()
        extra = dataset.split.cold_test[:4]
        model.adapt_to_interactions(extra)
        users_after = model.user_matrix()
        # The rebind changed the frozen graphs; a stale memo would have
        # returned the identical arrays.
        assert not np.array_equal(users_before, users_after)

    def test_kgat_rebind_recomputes(self, dataset):
        model = create_model("KGAT", dataset, seed=0)
        first = model._forward()
        extra = dataset.split.cold_test[:4]
        model.adapt_to_interactions(extra)
        second = model._forward()
        assert second is not first

    def test_training_dropout_forward_bypasses_memo(self, dataset):
        # A dropout draw advances the stream, so a training-mode hit is
        # impossible — the encoder must recompute (fresh masks) rather
        # than pay a guaranteed-miss lookup or, worse, serve stale ones.
        model = create_model("Firzen", dataset, seed=0)
        encoder = next(iter(model.modality_encoders.values()))
        encoder.train()
        first = encoder()
        second = encoder()
        assert second[0] is not first[0]
        encoder.eval()
        eval_first = encoder()
        eval_second = encoder()
        assert eval_second[0] is eval_first[0]   # deterministic: memoized

    def test_lazy_row_flush_preserves_hit(self):
        # A flush replays deferred rows but changes no logical value:
        # versions already counted the step, so the memo entry created
        # *after* the step must survive the flush.
        emb = Embedding(50, 4, np.random.default_rng(0))
        opt = Adam(emb.parameters(), lr=0.1, sparse=True)
        out = emb(np.array([1, 2, 3]))
        out.sum().backward()
        opt.step()
        memo = ForwardMemo()
        computes = []

        def compute():
            computes.append(1)
            return emb.weight.data.copy()

        first = memo.cached("w", [emb.weight], compute)
        opt.flush()
        second = memo.cached("w", [emb.weight], compute)
        assert second is first and len(computes) == 1
        opt.release()
